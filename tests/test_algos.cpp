// Correctness of the four convolution kernels against the scalar reference,
// swept over layer shapes and vector lengths (TEST_P), plus algorithm-specific
// behaviours: strategy switching, blocking, applicability, sampled-simulation
// consistency.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/direct.h"
#include "algos/winograd.h"
#include "algos/reference.h"
#include "algos/registry.h"
#include "common/rng.h"

namespace vlacnn {
namespace {

std::vector<float> random_weights(const ConvLayerDesc& d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> w(d.weight_elems());
  fill_uniform(rng, w.data(), w.size(), -1.0f, 1.0f);
  return w;
}

Tensor random_input(const ConvLayerDesc& d, std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef);
  Tensor in(d.ic, d.ih, d.iw);
  in.fill_random(rng);
  return in;
}

void expect_matches_reference(Algo a, const ConvLayerDesc& d,
                              const VpuConfig& vpu, float rel_tol) {
  const Tensor in = random_input(d, 11);
  const auto w = random_weights(d, 22);
  const Tensor ref = conv_reference(d, in, w);
  const Tensor got = conv_functional(a, d, in, w, vpu);
  const float err = max_abs_diff(ref, got);
  const float scale = max_abs(ref) + 1.0f;
  EXPECT_LE(err, rel_tol * scale)
      << to_string(a) << " on " << d.to_string() << " vlen=" << vpu.vlen_bits;
}

// ------------------------- parameterized shape x algo x vlen sweep ---------

struct ShapeCase {
  const char* name;
  ConvLayerDesc desc;
};

const ShapeCase kShapes[] = {
    {"rgb_3x3_pad", {3, 18, 20, 8, 3, 3, 1, 1}},
    {"mid_3x3_pad", {12, 13, 13, 10, 3, 3, 1, 1}},
    {"deep_3x3", {32, 9, 9, 24, 3, 3, 1, 1}},
    {"nopad_3x3", {5, 14, 10, 6, 3, 3, 1, 0}},
    {"stride2_3x3", {6, 17, 15, 9, 3, 3, 2, 1}},
    {"one_by_one", {16, 11, 11, 12, 1, 1, 1, 0}},
    {"five_by_five", {4, 16, 16, 5, 5, 5, 1, 2}},
    {"tall_input", {3, 31, 7, 4, 3, 3, 1, 1}},
    {"tiny_spatial", {20, 6, 6, 20, 3, 3, 1, 1}},
    {"stride2_1x1", {8, 12, 12, 8, 1, 1, 2, 0}},
};

class ConvAlgoTest
    : public ::testing::TestWithParam<
          std::tuple<int /*shape idx*/, Algo, std::uint32_t /*vlen*/>> {};

TEST_P(ConvAlgoTest, MatchesReference) {
  const auto [shape_idx, algo, vlen] = GetParam();
  const ConvLayerDesc d = kShapes[shape_idx].desc;
  if (!algo_applicable(algo, d)) GTEST_SKIP() << "not applicable";
  VpuConfig vpu{vlen, 8, VpuAttach::kIntegratedL1};
  const float tol = algo == Algo::kWinograd ? 5e-4f : 2e-5f;
  expect_matches_reference(algo, d, vpu, tol);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, ConvAlgoTest,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(Algo::kDirect, Algo::kGemm3,
                                         Algo::kGemm6, Algo::kWinograd),
                       ::testing::Values(512u, 1024u, 4096u)),
    [](const testing::TestParamInfo<std::tuple<int, Algo, std::uint32_t>>&
           info) {
      return std::string(kShapes[std::get<0>(info.param)].name) + "_" +
             to_string(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param));
    });

// ----------------------------------------------------- applicability -------

TEST(Applicability, WinogradOnlyFor3x3Stride1) {
  EXPECT_TRUE(algo_applicable(Algo::kWinograd,
                              ConvLayerDesc{4, 8, 8, 4, 3, 3, 1, 1}));
  EXPECT_FALSE(algo_applicable(Algo::kWinograd,
                               ConvLayerDesc{4, 8, 8, 4, 3, 3, 2, 1}));
  EXPECT_FALSE(algo_applicable(Algo::kWinograd,
                               ConvLayerDesc{4, 8, 8, 4, 1, 1, 1, 0}));
  EXPECT_FALSE(algo_applicable(Algo::kWinograd,
                               ConvLayerDesc{4, 8, 8, 4, 5, 5, 1, 2}));
  for (Algo a : {Algo::kDirect, Algo::kGemm3, Algo::kGemm6}) {
    EXPECT_TRUE(algo_applicable(a, ConvLayerDesc{4, 8, 8, 4, 5, 5, 2, 2}));
  }
}

TEST(Applicability, SimulateRejectsInapplicable) {
  SimConfig c = make_sim_config(512, 1u << 20);
  EXPECT_THROW(
      conv_simulate(Algo::kWinograd, ConvLayerDesc{4, 8, 8, 4, 1, 1, 1, 0}, c),
      std::invalid_argument);
}

TEST(AlgoNames, RoundTrip) {
  for (Algo a : kAllAlgos) {
    EXPECT_EQ(algo_from_string(to_string(a)), a);
  }
  EXPECT_THROW(algo_from_string("fft"), std::invalid_argument);
}

// ----------------------------------------------------- direct strategy -----

TEST(DirectStrategy, WideWhenOutputChannelsFillRegister) {
  // oc >= mvl selects the channel-wide (OC-vectorized) form.
  EXPECT_TRUE(direct_uses_wide(ConvLayerDesc{64, 8, 8, 32, 3, 3, 1, 1}, 16));
  EXPECT_FALSE(direct_uses_wide(ConvLayerDesc{3, 8, 8, 8, 3, 3, 1, 1}, 16));
  // The same layer flips to width-vectorized at longer VLEN.
  EXPECT_TRUE(direct_uses_wide(ConvLayerDesc{64, 8, 8, 32, 3, 3, 1, 1}, 32));
  EXPECT_FALSE(direct_uses_wide(ConvLayerDesc{64, 8, 8, 32, 3, 3, 1, 1}, 128));
}

TEST(DirectStrategy, BothFormsNumericallyCorrect) {
  // oc = 24: wide at 512-bit (mvl 16), width-vectorized at 2048 (mvl 64).
  const ConvLayerDesc d{12, 15, 17, 24, 3, 3, 1, 1};
  EXPECT_TRUE(direct_uses_wide(d, 16));
  EXPECT_FALSE(direct_uses_wide(d, 64));
  expect_matches_reference(Algo::kDirect, d, VpuConfig{512, 8}, 2e-5f);
  expect_matches_reference(Algo::kDirect, d, VpuConfig{2048, 8}, 2e-5f);
}

// ------------------------------------------------ winograd tile sizes ------

TEST(WinogradTileSize, SmallerTilesAlsoNumericallyCorrect) {
  // The kernel is parameterized over F(m,3); m=2 and m=4 must convolve
  // correctly too (used by the tile-size ablation bench).
  const ConvLayerDesc d{6, 19, 17, 5, 3, 3, 1, 1};
  const Tensor in = random_input(d, 31);
  const auto w = random_weights(d, 32);
  const Tensor ref = conv_reference(d, in, w);
  VpuConfig vpu{512, 8, VpuAttach::kIntegratedL1};
  for (int m : {2, 4}) {
    const int n = m + 2;
    std::vector<float> u(static_cast<std::size_t>(n) * n * d.oc * d.ic);
    winograd_prepare_weights(d, w.data(), u.data(), m);
    FunctionalEngine eng(vpu);
    Tensor out(d.oc, d.oh(), d.ow());
    const BufView in_v = eng.bind(in.data(), in.size());
    const BufView u_v = eng.bind(u.data(), u.size());
    const BufView out_v = eng.bind(out.data(), out.size());
    conv_winograd(eng, d, in_v, u_v, out_v, Sampler{}, m);
    EXPECT_LE(max_abs_diff(ref, out), 1e-4f * (max_abs(ref) + 1.0f))
        << "m=" << m;
  }
}

TEST(WinogradTileSize, LargerTilesDoLessArithmetic) {
  // The m=6 tile does ~5.06x fewer tuple multiplies than direct; m=2 only
  // 2.25x. Simulated flops must be ordered accordingly.
  const ConvLayerDesc d{16, 36, 36, 16, 3, 3, 1, 1};
  double flops[3];
  int i = 0;
  for (int m : {2, 4, 6}) {
    SimConfig c = make_sim_config(512, 4u << 20);
    c.sampler.exact = true;
    MemorySystem mem(c.mem);
    TimingModel timing(c.vpu, &mem, c.timing);
    TraceEngine eng(c.vpu, &timing);
    const int n = m + 2;
    const BufView in = eng.bind(nullptr, d.in_elems());
    const BufView u = eng.bind(
        nullptr, static_cast<std::uint64_t>(n) * n * d.oc * d.ic);
    const BufView out = eng.bind(nullptr, d.out_elems());
    conv_winograd(eng, d, in, u, out, c.sampler, m);
    flops[i++] = timing.stats().flops;
  }
  EXPECT_GT(flops[0], flops[1]);
  EXPECT_GT(flops[1], flops[2]);
}

// ---------------------------------------------------------- gemm6 ----------

TEST(Gemm6, BlockSizeVariantsAllCorrect) {
  const ConvLayerDesc d{8, 12, 12, 16, 3, 3, 1, 1};
  const Tensor in = random_input(d, 5);
  const auto w = random_weights(d, 6);
  const Tensor ref = conv_reference(d, in, w);
  for (Gemm6Blocks blocks : {Gemm6Blocks{4, 32, 8}, Gemm6Blocks{16, 512, 128},
                             Gemm6Blocks{7, 33, 11}}) {
    SimConfig cfg;
    cfg.blocks = blocks;
    const Tensor got = conv_functional(Algo::kGemm6, d, in, w,
                                       VpuConfig{512, 8}, nullptr, &cfg);
    EXPECT_LE(max_abs_diff(ref, got), 1e-4f)
        << blocks.block_m << "x" << blocks.block_n << "x" << blocks.block_k;
  }
}

// ------------------------------------------------- simulation behaviour ----

TEST(Simulation, SampledCloseToExact) {
  // Sampling is an accuracy/time trade: on a mid-size layer the extrapolated
  // cycle count must stay within a few percent of the exact simulation at a
  // moderate budget, and within ~20% even under an extreme 10x extrapolation
  // (cold-cache compulsory misses get overweighted at the extreme).
  const ConvLayerDesc d{16, 56, 56, 32, 3, 3, 1, 1};
  for (Algo a : kAllAlgos) {
    SimConfig exact = make_sim_config(512, 1u << 20);
    exact.sampler.exact = true;
    const double ce = conv_simulate(a, d, exact).cycles;

    SimConfig moderate = make_sim_config(512, 1u << 20);
    moderate.sampler.max_work = 10'000'000;
    EXPECT_NEAR(conv_simulate(a, d, moderate).cycles / ce, 1.0, 0.10)
        << to_string(a) << " moderate";

    SimConfig extreme = make_sim_config(512, 1u << 20);
    extreme.sampler.max_work = 2'000'000;
    EXPECT_NEAR(conv_simulate(a, d, extreme).cycles / ce, 1.0, 0.20)
        << to_string(a) << " extreme";
  }
}

TEST(Simulation, DeterministicAcrossRuns) {
  const ConvLayerDesc d{8, 20, 20, 8, 3, 3, 1, 1};
  SimConfig c = make_sim_config(1024, 4u << 20);
  for (Algo a : kAllAlgos) {
    const double c1 = conv_simulate(a, d, c).cycles;
    const double c2 = conv_simulate(a, d, c).cycles;
    EXPECT_DOUBLE_EQ(c1, c2) << to_string(a);
  }
}

TEST(Simulation, CyclesScaleWithWork) {
  // Quadrupling the spatial area must increase cycles substantially.
  const ConvLayerDesc small{8, 16, 16, 8, 3, 3, 1, 1};
  const ConvLayerDesc big{8, 32, 32, 8, 3, 3, 1, 1};
  SimConfig c = make_sim_config(512, 1u << 20);
  for (Algo a : kAllAlgos) {
    const double cs = conv_simulate(a, small, c).cycles;
    const double cb = conv_simulate(a, big, c).cycles;
    EXPECT_GT(cb, 2.5 * cs) << to_string(a);
  }
}

TEST(Simulation, AvgVectorLengthTracksMvl) {
  // A wide layer should essentially saturate the vector register.
  const ConvLayerDesc d{64, 32, 32, 32, 3, 3, 1, 1};
  for (std::uint32_t vlen : {512u, 2048u}) {
    SimConfig c = make_sim_config(vlen, 4u << 20);
    const TimingStats s = conv_simulate(Algo::kGemm3, d, c);
    EXPECT_GT(s.avg_vl(), 0.8 * (vlen / 32.0)) << vlen;
    EXPECT_LE(s.avg_vl(), vlen / 32.0 + 1e-9);
  }
}

TEST(Simulation, FlopsMatchMacs) {
  // The GEMM kernels do exactly 2*MACs flops (plus a negligible im2col).
  const ConvLayerDesc d{8, 24, 24, 16, 3, 3, 1, 1};
  SimConfig c = make_sim_config(512, 4u << 20);
  c.sampler.exact = true;
  const TimingStats s = conv_simulate(Algo::kGemm3, d, c);
  const double macs = static_cast<double>(d.macs());
  EXPECT_NEAR(s.flops / (2.0 * macs), 1.0, 0.05);
}

TEST(Simulation, WinogradDoesFewerFlops) {
  const ConvLayerDesc d{32, 48, 48, 32, 3, 3, 1, 1};
  SimConfig c = make_sim_config(512, 4u << 20);
  c.sampler.exact = true;
  const double wino = conv_simulate(Algo::kWinograd, d, c).flops;
  const double gemm = conv_simulate(Algo::kGemm3, d, c).flops;
  EXPECT_LT(wino, 0.6 * gemm);  // ~2.25-5x arithmetic reduction incl transforms
}

TEST(Simulation, DecoupledDiffersFromIntegrated) {
  const ConvLayerDesc d{16, 32, 32, 16, 3, 3, 1, 1};
  SimConfig ci = make_sim_config(512, 1u << 20, 8, VpuAttach::kIntegratedL1);
  SimConfig cd = make_sim_config(512, 1u << 20, 8, VpuAttach::kDecoupledL2);
  const double i = conv_simulate(Algo::kGemm3, d, ci).cycles;
  const double dc = conv_simulate(Algo::kGemm3, d, cd).cycles;
  EXPECT_NE(i, dc);
  EXPECT_GT(dc, i);  // every vector access pays the L2 path
}

TEST(Simulation, HybridFunctionalTimingMatchesTrace) {
  // Attaching a TimingModel to the functional engine must reproduce the trace
  // engine's cycle count exactly (same program, same addresses).
  const ConvLayerDesc d{6, 12, 12, 8, 3, 3, 1, 1};
  for (Algo a : kAllAlgos) {
    SimConfig c = make_sim_config(512, 1u << 20);
    c.sampler.exact = true;  // functional never samples; align the trace
    const double trace_cycles = conv_simulate(a, d, c).cycles;
    const Tensor in = random_input(d, 3);
    const auto w = random_weights(d, 4);
    TimingStats hybrid;
    conv_functional(a, d, in, w, c.vpu, &hybrid, &c);
    EXPECT_DOUBLE_EQ(hybrid.cycles, trace_cycles) << to_string(a);
  }
}

// ------------------------------------------------ input validation ---------

TEST(Registry, RejectsBadInputs) {
  const ConvLayerDesc d{3, 8, 8, 4, 3, 3, 1, 1};
  Tensor in(3, 8, 8);
  std::vector<float> w(d.weight_elems());
  EXPECT_THROW(conv_functional(Algo::kGemm3, d, Tensor(4, 8, 8), w,
                               VpuConfig{}),
               std::invalid_argument);
  EXPECT_THROW(conv_functional(Algo::kGemm3, d, in,
                               std::vector<float>(5), VpuConfig{}),
               std::invalid_argument);
  Tensor nhwc(3, 8, 8, Layout::kNHWC);
  EXPECT_THROW(conv_functional(Algo::kGemm3, d, nhwc, w, VpuConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlacnn

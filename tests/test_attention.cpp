// Tests for the self-attention extension (the thesis's future-work direction):
// numerical correctness vs the scalar reference, VLA invariance, and the
// simulated performance characteristics of its skinny matrices.
#include <gtest/gtest.h>

#include "attention/attention.h"
#include "common/rng.h"

namespace vlacnn {
namespace {

struct Operands {
  std::vector<float> x, wq, wk, wv, wo;
};

Operands make_operands(const AttentionDesc& d, std::uint64_t seed) {
  Rng rng(seed);
  Operands op;
  const std::size_t sd = static_cast<std::size_t>(d.seq_len) * d.dim;
  const std::size_t dd = static_cast<std::size_t>(d.dim) * d.dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.dim));
  op.x.resize(sd);
  for (auto& v : op.x) v = rng.uniform(-1, 1);
  for (auto* w : {&op.wq, &op.wk, &op.wv, &op.wo}) {
    w->resize(dd);
    for (auto& v : *w) v = rng.uniform(-scale, scale);
  }
  return op;
}

float run_error(const AttentionDesc& d, const VpuConfig& vpu,
                std::uint64_t seed) {
  const Operands op = make_operands(d, seed);
  std::vector<float> ref(static_cast<std::size_t>(d.seq_len) * d.dim);
  self_attention_reference(d, op.x.data(), op.wq.data(), op.wk.data(),
                           op.wv.data(), op.wo.data(), ref.data());
  const std::vector<float> got = self_attention_functional(
      d, op.x, op.wq, op.wk, op.wv, op.wo, vpu);
  float worst = 0.0f, scale = 0.0f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    worst = std::max(worst, std::fabs(ref[i] - got[i]));
    scale = std::max(scale, std::fabs(ref[i]));
  }
  return worst / (scale + 1e-6f);
}

TEST(Attention, DescArithmetic) {
  AttentionDesc d{196, 768, 12};
  EXPECT_EQ(d.head_dim(), 64);
  EXPECT_GT(d.flops(), 0u);
  // Projections dominate when seq << dim.
  const std::uint64_t proj = 2ull * 4 * 196 * 768 * 768;
  EXPECT_GT(d.flops(), proj);
}

TEST(Attention, MatchesReferenceSmall) {
  EXPECT_LT(run_error(AttentionDesc{12, 16, 4}, VpuConfig{512, 8}, 1), 2e-4f);
}

TEST(Attention, MatchesReferenceRectangular) {
  EXPECT_LT(run_error(AttentionDesc{23, 24, 3}, VpuConfig{512, 8}, 2), 2e-4f);
}

TEST(Attention, VlaInvariance) {
  // Same numbers at every vector length (the VLA portability property).
  const AttentionDesc d{10, 16, 2};
  const Operands op = make_operands(d, 3);
  const std::vector<float> a = self_attention_functional(
      d, op.x, op.wq, op.wk, op.wv, op.wo, VpuConfig{512, 8});
  const std::vector<float> b = self_attention_functional(
      d, op.x, op.wq, op.wk, op.wv, op.wo, VpuConfig{4096, 8});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 2e-5f) << i;
  }
}

TEST(Attention, RejectsBadShapes) {
  EXPECT_THROW(self_attention_functional(AttentionDesc{8, 10, 3}, {}, {}, {},
                                         {}, {}, VpuConfig{}),
               std::invalid_argument);
}

TEST(Attention, SoftmaxRowsAreNormalised) {
  // Attention output of a constant-V input equals that constant per row:
  // out = P*V with rows of P summing to 1.
  const AttentionDesc d{9, 8, 2};
  Operands op = make_operands(d, 4);
  // Identity-ish trick: make Wv map X to a constant column and Wo identity.
  // Simpler: just check the functional/reference agreement covers softmax
  // (already done) and that scaling logits leaves rows normalised: feed huge X.
  for (auto& v : op.x) v *= 50.0f;  // stress the max-subtraction path
  EXPECT_LT(run_error(AttentionDesc{9, 8, 2}, VpuConfig{1024, 8}, 4), 5e-3f);
}

TEST(Attention, SimulationScalesWithSequenceLength) {
  SimConfig c = make_sim_config(512, 4u << 20);
  const double small =
      attention_simulate(AttentionDesc{32, 64, 4}, c).cycles;
  const double big = attention_simulate(AttentionDesc{128, 64, 4}, c).cycles;
  EXPECT_GT(big, 3.0 * small);  // two S^2 terms + linear terms
}

TEST(Attention, SkinnyMatricesLimitLongVectorGains) {
  // The thesis's observation: ViT matrices are skinny, so attention scales
  // worse from 512 -> 4096-bit than a fat conv GEMM does.
  const AttentionDesc d{64, 96, 4};  // head_dim 24: skinny inner matmuls
  SimConfig c512 = make_sim_config(512, 4u << 20);
  SimConfig c4096 = make_sim_config(4096, 4u << 20);
  const double att_gain = attention_simulate(d, c512).cycles /
                          attention_simulate(d, c4096).cycles;
  const ConvLayerDesc conv{64, 56, 56, 64, 3, 3, 1, 1};
  const double conv_gain = conv_simulate(Algo::kGemm6, conv, c512).cycles /
                           conv_simulate(Algo::kGemm6, conv, c4096).cycles;
  EXPECT_LT(att_gain, conv_gain);
  EXPECT_GT(att_gain, 1.0);  // still some benefit
}

TEST(Attention, DeterministicSimulation) {
  SimConfig c = make_sim_config(1024, 1u << 20);
  const AttentionDesc d{48, 64, 4};
  EXPECT_DOUBLE_EQ(attention_simulate(d, c).cycles,
                   attention_simulate(d, c).cycles);
}

}  // namespace
}  // namespace vlacnn

// Per-request tracing (obs/reqtrace.h): the tail-based sampler's retention
// contract (k slowest with deterministic ties, 100% of drops and SLO
// violations, seeded head sample), the Sterbenz exactness of every sampled
// trace's span attribution — (queue_wait + formation_wait) + service folds
// left-to-right to completion - arrival, and the per-layer segments fold
// right-to-left back to the service span, bit for bit — the env-knob surface,
// JSONL parse-back through the product JSON parser, the sorted-label sink,
// and the wiring into the serving event loop (dispatch annotations included).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/reqtrace.h"
#include "obs/sketch.h"
#include "report/json.h"
#include "serving/request_sim.h"

namespace vlacnn {
namespace {

using serving::AdaptiveBatchPolicy;
using serving::NoBatchPolicy;
using serving::PoissonArrivals;
using serving::RequestSimConfig;
using serving::ServingStats;
using serving::TraceArrivals;

// -- env knobs ----------------------------------------------------------------

TEST(ReqTraceKnobs, EnvParsesAndMalformedValuesThrow) {
  // ctest runs every test in its own process (gtest_discover_tests), so the
  // lazy one-shot env parse is fresh here; nothing else in this file touches
  // the TOPK/HEAD knobs before this test in a whole-binary run either.
  setenv("VLACNN_REQTRACE_TOPK", "bogus", 1);
  EXPECT_THROW(obs::reqtrace_top_k(), std::runtime_error);
  setenv("VLACNN_REQTRACE_TOPK", "0", 1);  // below the >= 1 floor
  EXPECT_THROW(obs::reqtrace_top_k(), std::runtime_error);
  setenv("VLACNN_REQTRACE_TOPK", "12", 1);
  EXPECT_EQ(obs::reqtrace_top_k(), 12u);

  setenv("VLACNN_REQTRACE_HEAD", "7x", 1);
  EXPECT_THROW(obs::reqtrace_head_every(), std::runtime_error);
  setenv("VLACNN_REQTRACE_HEAD", "16", 1);
  EXPECT_EQ(obs::reqtrace_head_every(), 16u);

  // The parsed values feed default_reqtrace_config; slo comes from the caller.
  const obs::ReqTraceConfig cfg = obs::default_reqtrace_config(777.0);
  EXPECT_EQ(cfg.top_k, 12u);
  EXPECT_EQ(cfg.head_every, 16u);
  EXPECT_EQ(cfg.slo_cycles, 777.0);

  unsetenv("VLACNN_REQTRACE_TOPK");
  unsetenv("VLACNN_REQTRACE_HEAD");
  obs::set_reqtrace_top_k(8);  // restore defaults for in-process runs
  obs::set_reqtrace_head_every(0);
}

TEST(ReqTraceKnobs, PathSetterGatesCollection) {
  const std::string before = obs::reqtrace_path();
  obs::set_reqtrace_path("/tmp/rt.jsonl");
  EXPECT_TRUE(obs::reqtrace_enabled());
  EXPECT_EQ(obs::reqtrace_path(), "/tmp/rt.jsonl");
  obs::set_reqtrace_path("");
  EXPECT_FALSE(obs::reqtrace_enabled());
  EXPECT_THROW(obs::set_reqtrace_top_k(0), std::invalid_argument);
  obs::set_reqtrace_path(before);
}

// -- keep reasons -------------------------------------------------------------

TEST(ReqTraceKeep, ReasonStringFixedOrder) {
  EXPECT_EQ(obs::keep_reasons_string(0), "");
  EXPECT_EQ(obs::keep_reasons_string(obs::kKeepSlowest), "slowest");
  EXPECT_EQ(obs::keep_reasons_string(obs::kKeepDrop | obs::kKeepHead),
            "drop,head");
  EXPECT_EQ(obs::keep_reasons_string(obs::kKeepHead | obs::kKeepViolation |
                                     obs::kKeepDrop | obs::kKeepSlowest),
            "slowest,drop,violation,head");
}

// -- head sampling ------------------------------------------------------------

TEST(ReqTraceHead, PureFunctionOfIdEveryAndSeed) {
  for (std::uint64_t id = 1; id <= 64; ++id) {
    EXPECT_FALSE(obs::head_sampled(id, 0, 99));  // 0 = off
    EXPECT_TRUE(obs::head_sampled(id, 1, 99));   // 1 = keep all
    EXPECT_EQ(obs::head_sampled(id, 4, 99), obs::head_sampled(id, 4, 99));
  }
  // Roughly 1-in-N: loose bounds, exact value pinned by determinism anyway.
  std::uint64_t hits = 0;
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    hits += obs::head_sampled(id, 4, 0x7e1e5c0) ? 1 : 0;
  }
  EXPECT_GT(hits, 2000u);
  EXPECT_LT(hits, 3000u);
  // A different seed selects a different subset.
  std::uint64_t agree = 0;
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    agree += obs::head_sampled(id, 4, 1) == obs::head_sampled(id, 4, 2) ? 1 : 0;
  }
  EXPECT_LT(agree, 10000u);
}

// -- tail sampler -------------------------------------------------------------

obs::RequestTrace completion(std::uint64_t id, double latency,
                             unsigned keep = 0) {
  obs::RequestTrace t;
  t.trace_id = id;
  t.arrival = 0;
  t.dispatch = 0;
  t.completion = latency;
  t.service = latency;
  t.keep = keep;
  return t;
}

std::vector<std::uint64_t> ids_of(const std::vector<obs::RequestTrace>& v) {
  std::vector<std::uint64_t> out;
  for (const auto& t : v) out.push_back(t.trace_id);
  return out;
}

TEST(TailSampler, KeepsKSlowestAndBreaksTiesTowardLowerId) {
  obs::TailSampler s(2);
  s.offer(completion(1, 10.0));
  s.offer(completion(2, 20.0));
  s.offer(completion(3, 20.0));  // ties id 2: the lower id wins retention
  s.offer(completion(4, 30.0));
  EXPECT_EQ(s.retained(), 2u);
  const auto kept = s.take();
  EXPECT_EQ(ids_of(kept), (std::vector<std::uint64_t>{2, 4}));
  for (const auto& t : kept) EXPECT_EQ(t.keep, obs::kKeepSlowest);
}

TEST(TailSampler, RetainsEveryDropAndEveryViolation) {
  obs::TailSampler s(1);
  // Five drops, three violations, two fast clean completions.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    obs::RequestTrace t = completion(id, 0.0, obs::kKeepDrop);
    t.dropped = true;
    s.offer(std::move(t));
  }
  for (std::uint64_t id = 6; id <= 8; ++id) {
    s.offer(completion(id, 100.0 + static_cast<double>(id),
                       obs::kKeepViolation));
  }
  s.offer(completion(9, 1.0));
  s.offer(completion(10, 2.0));
  const auto kept = s.take();
  // All 5 drops + all 3 violations; the k=1 slowest (id 8) is a violation, so
  // the clean completions 9/10 (evicted from the top-1) vanish.
  EXPECT_EQ(ids_of(kept), (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  for (const auto& t : kept) {
    if (t.dropped) {
      EXPECT_EQ(t.keep, obs::kKeepDrop);  // drops never enter the slowest set
    } else {
      EXPECT_TRUE(t.keep & obs::kKeepViolation);
    }
  }
  const auto& slowest = kept.back();
  EXPECT_EQ(slowest.keep, obs::kKeepViolation | obs::kKeepSlowest);
}

TEST(TailSampler, EvictedViolationSurvivesWithoutSlowestFlag) {
  obs::TailSampler s(1);
  s.offer(completion(1, 50.0, obs::kKeepViolation));  // in the top-1
  s.offer(completion(2, 60.0));                       // evicts id 1
  const auto kept = s.take();
  EXPECT_EQ(ids_of(kept), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(kept[0].keep, obs::kKeepViolation);
  EXPECT_EQ(kept[1].keep, obs::kKeepSlowest);
}

// -- per-layer span splitting -------------------------------------------------

double fold_right(const std::vector<obs::TraceSegment>& segs) {
  double acc = 0;
  for (std::size_t i = segs.size(); i-- > 0;) acc = segs[i].duration + acc;
  return acc;
}

TEST(SplitServiceSpan, SegmentsFoldBackToTotalBitExactly) {
  // Awkward magnitude mixes: naive weight * total products would round apart
  // from the span; the exact_split chain must not.
  const std::vector<std::pair<std::string, double>> layers = {
      {"conv1/direct", 0.3333333333333333},
      {"conv2/gemm3", 1e-7},
      {"conv3/gemm6", 123456.789},
      {"conv4/winograd", 0.9999999999999999},
  };
  for (double total : {1.0, 0.1, 3.0, 1e-9, 1e12, 12345.6789,
                       7.000000000000001}) {
    const auto segs = obs::split_service_span(total, layers);
    ASSERT_EQ(segs.size(), layers.size());
    EXPECT_EQ(fold_right(segs), total) << total;  // bit-exact, no tolerance
    for (std::size_t i = 0; i < segs.size(); ++i) {
      EXPECT_EQ(segs[i].name, layers[i].first);
      EXPECT_GE(segs[i].duration, 0.0);
    }
  }
  // Proportions are honoured (to rounding) when weights are comparable.
  const auto even = obs::split_service_span(
      1000.0, {{"a", 1.0}, {"b", 1.0}, {"c", 2.0}});
  EXPECT_NEAR(even[0].duration, 250.0, 1e-9);
  EXPECT_NEAR(even[1].duration, 250.0, 1e-9);
  EXPECT_NEAR(even[2].duration, 500.0, 1e-9);
}

TEST(SplitServiceSpan, EdgeWeightsAndEmptyLayers) {
  EXPECT_TRUE(obs::split_service_span(100.0, {}).empty());
  // Non-positive weights count as zero; the last segment absorbs everything
  // when every weight is zero.
  const auto zeros = obs::split_service_span(
      64.0, {{"a", 0.0}, {"b", -3.0}, {"c", 0.0}});
  ASSERT_EQ(zeros.size(), 3u);
  EXPECT_EQ(zeros[0].duration, 0.0);
  EXPECT_EQ(zeros[1].duration, 0.0);
  EXPECT_EQ(zeros[2].duration, 64.0);
  // A zero-length span (a drop) splits into zero-length segments.
  for (const auto& seg : obs::split_service_span(0.0, {{"a", 1.0}, {"b", 2.0}})) {
    EXPECT_EQ(seg.duration, 0.0);
  }
}

TEST(SplitServiceSpan, FirstCutPinsToServingExactSplit) {
  // reqtrace.cpp re-declares serving::exact_split instead of including the
  // serving headers; this pin keeps the two attributions the same function.
  const double total = 12345.6789;
  const double w0 = 0.3, w1 = 0.7;
  const auto segs =
      obs::split_service_span(total, {{"a", w0}, {"b", w1}});
  const auto [head, tail] =
      serving::exact_split(total, total * (w0 / (w0 + w1)));
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].duration, head);
  EXPECT_EQ(segs[1].duration, tail);
}

// -- recorder through the serving event loop ----------------------------------

RequestSimConfig sim_config(int instances, double first, double marginal,
                            std::size_t queue_cap = 0, double slo = 0) {
  RequestSimConfig c;
  c.instances = instances;
  c.cost = {first, marginal};
  c.queue_capacity = queue_cap;
  c.slo_cycles = slo;
  return c;
}

TEST(ReqTraceRecorder, BurstCountsAndRetentionContract) {
  // Ten simultaneous arrivals, one instance, 4-deep waiting room, SLO 120:
  // ids 1-5 complete at 50/100/.../250 (violations 3-5), ids 6-10 drop.
  obs::ReqTraceConfig rtc;
  rtc.top_k = 2;
  rtc.slo_cycles = 120.0;
  obs::RequestTraceRecorder rec(rtc);
  RequestSimConfig c = sim_config(1, 50.0, 50.0, 4, 120.0);
  c.reqtrace = &rec;
  TraceArrivals arrivals(std::vector<double>(10, 0.0));
  NoBatchPolicy policy;
  const ServingStats s = simulate_requests(c, arrivals, policy);
  EXPECT_EQ(s.dropped, 5u);

  EXPECT_EQ(rec.offered(), 10u);
  EXPECT_EQ(rec.completed(), 5u);
  EXPECT_EQ(rec.dropped(), 5u);
  EXPECT_EQ(rec.violations(), 3u);
  // 100% of drops (6-10) and violations (3-5) retained; the top-2 slowest are
  // violations already, and the clean completions 1-2 are discarded.
  const auto& kept = rec.sampled();
  EXPECT_EQ(ids_of(kept), (std::vector<std::uint64_t>{3, 4, 5, 6, 7, 8, 9, 10}));
  EXPECT_EQ(kept[0].keep, obs::kKeepViolation);  // id 3 fell out of the top-2
  EXPECT_EQ(kept[1].keep, obs::kKeepViolation | obs::kKeepSlowest);
  EXPECT_EQ(kept[2].keep, obs::kKeepViolation | obs::kKeepSlowest);
  EXPECT_EQ(kept[2].completion, 250.0);
  for (const auto& t : kept) {
    if (t.dropped) {
      EXPECT_EQ(t.keep, obs::kKeepDrop);
      EXPECT_EQ(t.latency(), 0.0);
      EXPECT_EQ(t.instance, -1);
      EXPECT_FALSE(t.within_slo);
    } else {
      EXPECT_EQ(t.batch, 1);
      EXPECT_EQ(t.instance, 0);
    }
  }
}

TEST(ReqTraceRecorder, EverySampledSpanSumsBitExactly) {
  // The acceptance contract: for EVERY sampled request the top-level spans
  // fold left-to-right to the latency and the layer segments fold
  // right-to-left to the service span — bit-exactly, under real Poisson
  // traffic with batching, drops, violations, and a head sample.
  obs::ReqTraceConfig rtc;
  rtc.top_k = 16;
  rtc.head_every = 3;
  rtc.slo_cycles = 1000.0;
  rtc.service_layers = {{"conv1/direct", 0.3333333333333333},
                        {"conv2/gemm3", 123456.789},
                        {"conv3/winograd", 1e-7}};
  obs::RequestTraceRecorder rec(rtc);
  RequestSimConfig c = sim_config(2, 300.0, 150.0, 3, 1000.0);
  c.reqtrace = &rec;
  PoissonArrivals arrivals(400.0, 2000, 7);
  AdaptiveBatchPolicy policy(8, 500.0);
  simulate_requests(c, arrivals, policy);

  EXPECT_EQ(rec.offered(), 2000u);
  EXPECT_GT(rec.dropped(), 0u);
  EXPECT_GT(rec.violations(), 0u);
  const auto& kept = rec.sampled();
  EXPECT_GT(kept.size(), rtc.top_k);  // drops/violations/head beyond the top-k
  std::uint64_t drops_seen = 0, violations_seen = 0, heads_seen = 0;
  for (const auto& t : kept) {
    // Left-to-right over the top-level spans.
    EXPECT_EQ((t.queue_wait + t.formation_wait) + t.service,
              t.completion - t.arrival)
        << "trace " << t.trace_id;
    EXPECT_EQ(t.latency(), t.completion - t.arrival);
    if (t.dropped) {
      ++drops_seen;
      EXPECT_TRUE(t.layers.empty());
      continue;
    }
    // Right-to-left over the per-layer segments.
    ASSERT_EQ(t.layers.size(), rtc.service_layers.size());
    EXPECT_EQ(fold_right(t.layers), t.service) << "trace " << t.trace_id;
    if (!t.within_slo) ++violations_seen;
    if (t.keep & obs::kKeepHead) ++heads_seen;
  }
  // Retention: every drop and every violation was sampled, plus a head sample.
  EXPECT_EQ(drops_seen, rec.dropped());
  EXPECT_EQ(violations_seen, rec.violations());
  EXPECT_GT(heads_seen, 0u);
  for (const auto& t : kept) {
    if (t.keep & obs::kKeepHead) {
      EXPECT_TRUE(obs::head_sampled(t.trace_id, rtc.head_every, rtc.head_seed));
    }
  }
}

TEST(ReqTraceRecorder, HeadEveryOneKeepsEveryRequest) {
  obs::ReqTraceConfig rtc;
  rtc.top_k = 1;
  rtc.head_every = 1;
  obs::RequestTraceRecorder rec(rtc);
  RequestSimConfig c = sim_config(1, 50.0, 50.0, 2);
  c.reqtrace = &rec;
  TraceArrivals arrivals(std::vector<double>(6, 0.0));
  NoBatchPolicy policy;
  simulate_requests(c, arrivals, policy);
  EXPECT_EQ(rec.sampled().size(), rec.offered());
}

TEST(ReqTraceRecorder, ServiceModelAnnotationsRideTheTrace) {
  // A ServiceModel's trace_annotations are captured at dispatch and attached
  // to every member of that batch; with no-batch serial service, trace id n
  // rides service call n.
  class NotingModel final : public serving::ServiceModel {
   public:
    double service_cycles(int batch) override {
      ++calls_;
      return 50.0 + 10.0 * batch;
    }
    void trace_annotations(std::vector<obs::TraceNote>& out) override {
      out.push_back({"dispatch", "noting"});
      out.push_back({"call", std::to_string(calls_)});
    }

   private:
    int calls_ = 0;
  } model;
  obs::ReqTraceConfig rtc;
  rtc.top_k = 8;
  obs::RequestTraceRecorder rec(rtc);
  RequestSimConfig c = sim_config(1, 0.0, 0.0);
  c.service = &model;
  c.reqtrace = &rec;
  TraceArrivals arrivals({0.0, 0.0, 0.0});
  NoBatchPolicy policy;
  simulate_requests(c, arrivals, policy);
  const auto& kept = rec.sampled();
  ASSERT_EQ(kept.size(), 3u);
  for (const auto& t : kept) {
    ASSERT_EQ(t.notes.size(), 2u);
    EXPECT_EQ(t.notes[0].key, "dispatch");
    EXPECT_EQ(t.notes[0].value, "noting");
    EXPECT_EQ(t.notes[1].key, "call");
    EXPECT_EQ(t.notes[1].value, std::to_string(t.trace_id));
  }
}

TEST(ReqTraceRecorder, LatencySketchCarriesTailExemplars) {
  obs::ReqTraceConfig rtc;
  rtc.top_k = 2;
  obs::RequestTraceRecorder rec(rtc);
  RequestSimConfig c = sim_config(1, 50.0, 50.0);
  c.reqtrace = &rec;
  TraceArrivals arrivals(std::vector<double>(20, 0.0));
  NoBatchPolicy policy;
  simulate_requests(c, arrivals, policy);
  EXPECT_EQ(rec.latency_sketch().count(), 20u);
  const auto tail = rec.latency_sketch().tail_exemplars(0.90);
  ASSERT_FALSE(tail.empty());
  // The last tail bucket's exemplar is the slowest request of the run: the
  // 20th back-to-back service, id 20, latency 1000.
  EXPECT_EQ(tail.back().second.id, 20u);
  EXPECT_EQ(tail.back().second.value, 1000.0);
}

// -- JSONL --------------------------------------------------------------------

TEST(ReqTraceJsonl, BlockParsesBackThroughProductParser) {
  obs::ReqTraceConfig rtc;
  rtc.top_k = 2;
  rtc.slo_cycles = 120.0;
  rtc.service_layers = {{"conv1/direct", 1.0}, {"conv2/gemm3", 2.0}};
  obs::RequestTraceRecorder rec(rtc);
  RequestSimConfig c = sim_config(1, 50.0, 50.0, 4, 120.0);
  c.reqtrace = &rec;
  TraceArrivals arrivals(std::vector<double>(10, 0.0));
  NoBatchPolicy policy;
  simulate_requests(c, arrivals, policy);

  std::istringstream in(rec.to_jsonl());
  std::string line;
  std::size_t headers = 0, exemplars = 0, requests = 0;
  while (std::getline(in, line)) {
    const report::Json j = report::parse_json(line);
    const std::string& type = j.at("type").string;
    if (type == "header") {
      ++headers;
      EXPECT_EQ(j.at("top_k").number, 2.0);
      EXPECT_EQ(j.at("slo_cycles").number, 120.0);
      EXPECT_EQ(j.at("offered").number, 10.0);
      EXPECT_EQ(j.at("completed").number, 5.0);
      EXPECT_EQ(j.at("dropped").number, 5.0);
      EXPECT_EQ(j.at("violations").number, 3.0);
      EXPECT_EQ(j.at("sampled").number, 8.0);
      EXPECT_EQ(j.at("layers").number, 2.0);
    } else if (type == "exemplar") {
      ++exemplars;
      EXPECT_GE(j.at("bucket_upper").number, j.at("latency").number);
      EXPECT_GT(j.at("id").number, 0.0);
    } else if (type == "request") {
      ++requests;
      // %.17g round-trips doubles exactly, so the parsed spans still satisfy
      // the bit-exact attribution identities.
      const double qw = j.at("queue_wait").number;
      const double fw = j.at("formation_wait").number;
      const double svc = j.at("service").number;
      EXPECT_EQ((qw + fw) + svc, j.at("latency").number);
      EXPECT_EQ(j.at("latency").number,
                j.at("completion").number - j.at("arrival").number);
      double layer_sum = 0;
      const auto& layers = j.at("layers").array;
      for (std::size_t i = layers.size(); i-- > 0;) {
        layer_sum = layers[i].at("cycles").number + layer_sum;
      }
      if (j.at("dropped").boolean) {
        EXPECT_TRUE(layers.empty());
      } else {
        EXPECT_EQ(layers.size(), 2u);
        EXPECT_EQ(layer_sum, svc);
        EXPECT_EQ(layers[0].at("name").string, "conv1/direct");
      }
      EXPECT_FALSE(j.at("keep").string.empty());
    } else {
      FAIL() << "unexpected line type " << type;
    }
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_GT(exemplars, 0u);
  EXPECT_EQ(requests, 8u);
}

TEST(ReqTraceJsonl, ByteStableAcrossRuns) {
  auto run = [] {
    obs::ReqTraceConfig rtc;
    rtc.top_k = 4;
    rtc.head_every = 5;
    rtc.slo_cycles = 2000.0;
    rtc.service_layers = {{"conv1/direct", 1.0}, {"conv2/gemm6", 3.0}};
    obs::RequestTraceRecorder rec(rtc);
    RequestSimConfig c = sim_config(2, 300.0, 150.0, 3, 2000.0);
    c.reqtrace = &rec;
    PoissonArrivals arrivals(400.0, 1000, 11);
    AdaptiveBatchPolicy policy(8, 500.0);
    simulate_requests(c, arrivals, policy);
    return rec.to_jsonl();
  };
  EXPECT_EQ(run(), run());
}

// -- sink ---------------------------------------------------------------------

TEST(ReqTraceSink, WritesBlocksInSortedLabelOrder) {
  obs::ReqTraceSink& sink = obs::ReqTraceSink::global();
  sink.reset();
  const std::string before_path = obs::reqtrace_path();
  const auto dir =
      std::filesystem::temp_directory_path() / "vlacnn_test_reqtrace";
  std::filesystem::remove_all(dir);
  const auto file = dir / "nested" / "rt.jsonl";
  obs::set_reqtrace_path(file.string());

  sink.record("zeta", "{\"type\":\"header\"}\n");
  sink.record("alpha", "{\"type\":\"header\"}\n");
  sink.record("zeta", "{\"type\":\"header\",\"v\":2}\n");  // last write wins
  EXPECT_EQ(sink.block_count(), 2u);
  EXPECT_EQ(sink.write_file(), file.string());

  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::string l1, l2, l3, l4;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  std::getline(in, l4);
  EXPECT_EQ(report::parse_json(l1).at("label").string, "alpha");
  EXPECT_EQ(l2, "{\"type\":\"header\"}");
  EXPECT_EQ(report::parse_json(l3).at("label").string, "zeta");
  EXPECT_EQ(l4, "{\"type\":\"header\",\"v\":2}");

  sink.reset();
  EXPECT_EQ(sink.block_count(), 0u);
  EXPECT_EQ(sink.next_auto_label(), "run000001");
  EXPECT_EQ(sink.next_auto_label(), "run000002");
  sink.reset();
  obs::set_reqtrace_path(before_path);
  std::filesystem::remove_all(dir);
}

TEST(ReqTraceSink, WriteWithoutPathThrows) {
  const std::string before = obs::reqtrace_path();
  obs::set_reqtrace_path("");
  obs::ReqTraceSink& sink = obs::ReqTraceSink::global();
  sink.reset();
  sink.record("x", "{}\n");
  EXPECT_THROW(sink.write_file(), std::runtime_error);
  sink.reset();
  obs::set_reqtrace_path(before);
}

}  // namespace
}  // namespace vlacnn

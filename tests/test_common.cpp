// Tests for the utility substrate: RNG, CSV, small linear algebra, Pareto.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "area/pareto.h"
#include "common/csv.h"
#include "common/linalg.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace vlacnn {
namespace {

// ---------------------------------------------------------------- Rng ------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(n), n);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.uniform(-2.5f, 7.5f);
    EXPECT_GE(f, -2.5f);
    EXPECT_LT(f, 7.5f);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<std::size_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 9u);
}

TEST(Rng, FillUniformFillsEverything) {
  Rng rng(17);
  std::vector<float> v(64, -100.0f);
  fill_uniform(rng, v.data(), v.size(), 0.0f, 1.0f);
  for (float f : v) {
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

// ---------------------------------------------------------------- Csv ------

TEST(Csv, ParseRoundTrip) {
  CsvTable t = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(t.header.size(), 3u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][2], "6");
  EXPECT_EQ(t.column("b"), 1);
  EXPECT_EQ(t.column("zzz"), -1);
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), std::runtime_error);
}

TEST(Csv, TracksLineNumbersAndTail) {
  CsvTable t = parse_csv("a,b\n\n1,2\n3,4\n");
  ASSERT_EQ(t.row_lines.size(), 2u);
  EXPECT_EQ(t.row_lines[0], 3);  // blank line 2 skipped
  EXPECT_EQ(t.row_lines[1], 4);
  EXPECT_TRUE(t.complete_tail);
  EXPECT_FALSE(parse_csv("a,b\n1,2").complete_tail);
}

TEST(Csv, LenientModeDropsOnlyPartialFinalLine) {
  CsvReadOptions opts;
  opts.tolerate_partial_tail = true;
  // Truncated final line (too few fields): dropped and flagged.
  CsvTable t = parse_csv("a,b,c\n1,2,3\n4,5", opts);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_TRUE(t.dropped_partial_tail);
  EXPECT_FALSE(t.complete_tail);
  // A ragged row in the middle is corruption, not a torn append: still throws.
  EXPECT_THROW(parse_csv("a,b\n1\n3,4\n", opts), std::runtime_error);
}

TEST(Csv, SkipsEmptyLinesAndCarriageReturns) {
  CsvTable t = parse_csv("a,b\r\n\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(Csv, MissingFileGivesEmptyTable) {
  CsvTable t = read_csv_file("/nonexistent/definitely/not/here.csv");
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("vlacnn_csv_test_" + std::to_string(::getpid()) + ".csv");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteReadRoundTrip) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"1", "2"}, {"3", "4"}};
  write_csv_file(path_.string(), t);
  CsvTable r = read_csv_file(path_.string());
  EXPECT_EQ(r.header, t.header);
  EXPECT_EQ(r.rows, t.rows);
}

TEST_F(CsvFileTest, AppendCreatesHeaderOnce) {
  append_csv_rows(path_.string(), {"a", "b"}, {{"1", "2"}});
  append_csv_rows(path_.string(), {"a", "b"}, {{"3", "4"}});
  CsvTable r = read_csv_file(path_.string());
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1][1], "4");
}

TEST_F(CsvFileTest, AppendHeaderMismatchThrows) {
  append_csv_rows(path_.string(), {"a", "b"}, {{"1", "2"}});
  EXPECT_THROW(append_csv_rows(path_.string(), {"a", "c"}, {{"3", "4"}}),
               std::runtime_error);
}

// ------------------------------------------------------------- Linalg ------

TEST(Linalg, MatmulKnown) {
  Mat a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Mat b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  Mat c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Linalg, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Mat(2, 3), Mat(2, 3)), std::invalid_argument);
}

TEST(Linalg, TransposeInvolution) {
  Rng rng(1);
  Mat a(3, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) a(i, j) = rng.uniform(-1, 1);
  Mat t = transpose(transpose(a));
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(t(i, j), a(i, j));
}

TEST(Linalg, SolveRecoverKnownSolution) {
  Rng rng(2);
  const std::size_t n = 6;
  Mat a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-3, 3);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += 4.0;  // diagonally dominant
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  std::vector<double> x = solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Linalg, SolveSingularThrows) {
  Mat a(2, 2);  // rank 1
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Linalg, LeastSquaresExactForConsistentSystem) {
  Mat a(4, 2);
  a(0, 0) = 1; a(0, 1) = 0;
  a(1, 0) = 0; a(1, 1) = 1;
  a(2, 0) = 1; a(2, 1) = 1;
  a(3, 0) = 2; a(3, 1) = -1;
  std::vector<double> x_true{3.0, -2.0};
  std::vector<double> b(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 2; ++j) b[i] += a(i, j) * x_true[j];
  std::vector<double> x = least_squares(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-10);
  EXPECT_NEAR(x[1], -2.0, 1e-10);
  EXPECT_LT(residual_inf(a, x, b), 1e-10);
}

// ------------------------------------------------------------- Pareto ------

TEST(Pareto, SimpleFrontier) {
  std::vector<ParetoPoint> pts = {
      {1, 10, 0}, {2, 5, 1}, {3, 7, 2}, {4, 1, 3}, {5, 0.5, 4}, {2, 20, 5}};
  auto f = pareto_frontier(pts);
  // Expected frontier: (1,10), (2,5), (4,1), (5,0.5).
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(pts[f[0]].tag, 0u);
  EXPECT_EQ(pts[f[1]].tag, 1u);
  EXPECT_EQ(pts[f[2]].tag, 3u);
  EXPECT_EQ(pts[f[3]].tag, 4u);
}

TEST(Pareto, FrontierPropertyRandom) {
  Rng rng(23);
  std::vector<ParetoPoint> pts;
  for (std::size_t i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100), i});
  }
  auto f = pareto_frontier(pts);
  std::set<std::size_t> on(f.begin(), f.end());
  auto dominates = [](const ParetoPoint& a, const ParetoPoint& b) {
    return a.obj_a <= b.obj_a && a.obj_b <= b.obj_b &&
           (a.obj_a < b.obj_a || a.obj_b < b.obj_b);
  };
  // No frontier point is dominated; every non-frontier point is dominated by
  // some frontier point.
  for (std::size_t i : f) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_FALSE(dominates(pts[j], pts[i]))
          << "frontier point " << i << " dominated by " << j;
    }
  }
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (on.count(j)) continue;
    bool dominated = false;
    for (std::size_t i : f) dominated |= dominates(pts[i], pts[j]);
    EXPECT_TRUE(dominated) << "point " << j << " not dominated";
  }
}

TEST(Pareto, KneeMinimisesProduct) {
  std::vector<ParetoPoint> pts = {{1, 100, 0}, {2, 20, 1}, {10, 3, 2}};
  auto f = pareto_frontier(pts);
  EXPECT_EQ(pareto_knee(pts, f), 2u);  // products: 100, 40, 30
}

TEST(Pareto, KneeEmptyFrontierThrows) {
  std::vector<ParetoPoint> pts;
  EXPECT_THROW(pareto_knee(pts, {}), std::invalid_argument);
}

// --------------------------------------------------------- ThreadPool ------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(1);  // the caller is the only executor
  EXPECT_EQ(pool.size(), 0u);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, FirstExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultThreadsRejectsGarbageEnv) {
  ::setenv("VLACNN_THREADS", "abc", 1);
  EXPECT_THROW(ThreadPool::default_threads(), std::runtime_error);
  ::setenv("VLACNN_THREADS", "0", 1);
  EXPECT_THROW(ThreadPool::default_threads(), std::runtime_error);
  ::setenv("VLACNN_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ::unsetenv("VLACNN_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace vlacnn

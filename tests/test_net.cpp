// Tests for the network substrate: builder shape propagation, the Table 1
// model definitions, functional inference, and network profiling.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/models.h"
#include "net/runner.h"

namespace vlacnn {
namespace {

// --------------------------------------------------------- builder ---------

TEST(NetworkBuilder, ShapePropagation) {
  Network net("t", {3, 32, 32});
  net.conv(8, 3, 1, 1).maxpool(2, 2).conv(16, 3, 2, 1);
  ASSERT_EQ(net.layers().size(), 3u);
  EXPECT_EQ(net.layers()[0].out_shape.c, 8);
  EXPECT_EQ(net.layers()[0].out_shape.h, 32);
  EXPECT_EQ(net.layers()[1].out_shape.h, 16);
  EXPECT_EQ(net.layers()[2].out_shape.h, 8);
  EXPECT_EQ(net.layers()[2].conv.ic, 8);
}

TEST(NetworkBuilder, ShortcutValidatesShapes) {
  Network net("t", {3, 16, 16});
  net.conv(8, 3, 1, 1).conv(8, 3, 1, 1);
  EXPECT_NO_THROW(net.shortcut(-2));
  Network bad("t", {3, 16, 16});
  bad.conv(8, 3, 1, 1).conv(16, 3, 1, 1);
  EXPECT_THROW(bad.shortcut(-2), std::invalid_argument);
}

TEST(NetworkBuilder, RouteConcatenatesChannels) {
  Network net("t", {3, 16, 16});
  net.conv(8, 1, 1, 0).conv(4, 1, 1, 0).route({-1, -2});
  EXPECT_EQ(net.layers().back().out_shape.c, 12);
}

TEST(NetworkBuilder, RouteSpatialMismatchThrows) {
  Network net("t", {3, 16, 16});
  net.conv(8, 3, 1, 1).conv(8, 3, 2, 1);
  EXPECT_THROW(net.route({-1, -2}), std::invalid_argument);
}

TEST(NetworkBuilder, BadReferencesThrow) {
  Network net("t", {3, 16, 16});
  net.conv(8, 3, 1, 1);
  EXPECT_THROW(net.shortcut(-5), std::invalid_argument);
  EXPECT_THROW(net.route({7}), std::invalid_argument);
  EXPECT_THROW(net.route({}), std::invalid_argument);
}

TEST(NetworkBuilder, ConvLayerIndices) {
  Network net("t", {3, 16, 16});
  net.conv(8, 3, 1, 1).maxpool(2, 2).conv(8, 3, 1, 1).conv(8, 3, 1, 1)
      .shortcut(-2);
  EXPECT_EQ(net.conv_layers(), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(net.conv_descs().size(), 3u);
}

// --------------------------------------- Table 1 model definitions ---------

TEST(Models, Vgg16MatchesTable1) {
  const Network net = make_vgg16(224);
  const auto descs = net.conv_descs();
  ASSERT_EQ(descs.size(), 13u);
  // (ic, oc, ih) triples from Paper II Table 1 (top).
  const int expect[13][3] = {
      {3, 64, 224},   {64, 64, 224},  {64, 128, 112}, {128, 128, 112},
      {128, 256, 56}, {256, 256, 56}, {256, 256, 56}, {256, 512, 28},
      {512, 512, 28}, {512, 512, 28}, {512, 512, 14}, {512, 512, 14},
      {512, 512, 14}};
  for (int i = 0; i < 13; ++i) {
    EXPECT_EQ(descs[i].ic, expect[i][0]) << "layer " << i + 1;
    EXPECT_EQ(descs[i].oc, expect[i][1]) << "layer " << i + 1;
    EXPECT_EQ(descs[i].ih, expect[i][2]) << "layer " << i + 1;
    EXPECT_EQ(descs[i].kh, 3);
    EXPECT_EQ(descs[i].stride, 1);
    EXPECT_EQ(descs[i].oh(), descs[i].ih);  // 'same' padding
  }
}

TEST(Models, Vgg16HasThreeFullyConnected) {
  const Network net = make_vgg16(224);
  int fc = 0, mp = 0;
  for (const Layer& l : net.layers()) {
    fc += l.kind == LayerKind::kConnected;
    mp += l.kind == LayerKind::kMaxPool;
  }
  EXPECT_EQ(fc, 3);
  EXPECT_EQ(mp, 5);
  EXPECT_EQ(net.layers().back().kind, LayerKind::kSoftmax);
}

TEST(Models, Yolov3PrefixMatchesTable1) {
  const Network net = make_yolov3(20, 608);
  EXPECT_EQ(net.layers().size(), 20u);
  const auto descs = net.conv_descs();
  ASSERT_EQ(descs.size(), 15u);  // "out of which 15 are convolutional"
  // (ic, oc, ih, k, stride) from Paper II Table 1 (bottom); conv #4 uses the
  // chaining-consistent ic=32 (see models.h note).
  const int expect[15][5] = {
      {3, 32, 608, 3, 1},    {32, 64, 608, 3, 2},  {64, 32, 304, 1, 1},
      {32, 64, 304, 3, 1},   {64, 128, 304, 3, 2}, {128, 64, 152, 1, 1},
      {64, 128, 152, 3, 1},  {128, 64, 152, 1, 1}, {64, 128, 152, 3, 1},
      {128, 256, 152, 3, 2}, {256, 128, 76, 1, 1}, {128, 256, 76, 3, 1},
      {256, 128, 76, 1, 1},  {128, 256, 76, 3, 1}, {256, 128, 76, 1, 1}};
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(descs[i].ic, expect[i][0]) << "conv " << i + 1;
    EXPECT_EQ(descs[i].oc, expect[i][1]) << "conv " << i + 1;
    EXPECT_EQ(descs[i].ih, expect[i][2]) << "conv " << i + 1;
    EXPECT_EQ(descs[i].kh, expect[i][3]) << "conv " << i + 1;
    EXPECT_EQ(descs[i].stride, expect[i][4]) << "conv " << i + 1;
  }
}

TEST(Models, Yolov3FullHas107LayersAnd75Convs) {
  const Network net = make_yolov3(-1, 608);
  EXPECT_EQ(net.layers().size(), 107u);
  EXPECT_EQ(net.conv_descs().size(), 75u);
  // Three detection heads at strides 32/16/8.
  int yolo = 0;
  for (const Layer& l : net.layers()) yolo += l.kind == LayerKind::kYolo;
  EXPECT_EQ(yolo, 3);
  // Head output resolutions: 19, 38, 76 for 608 input.
  EXPECT_EQ(net.layers()[82].out_shape.h, 19);
  EXPECT_EQ(net.layers()[94].out_shape.h, 38);
  EXPECT_EQ(net.layers()[106].out_shape.h, 76);
}

TEST(Models, Yolov3TinyStructure) {
  // Paper I: "YOLOv3-tiny ... features 23 layers, out of which 13 are
  // convolutional" (the published cfg has 24 incl. both yolo heads).
  const Network net = make_yolov3_tiny(416);
  EXPECT_EQ(net.conv_descs().size(), 13u);
  EXPECT_EQ(net.layers().size(), 24u);
  // The stride-1 'same' maxpool must keep the 13x13 grid.
  EXPECT_EQ(net.layers()[11].kind, LayerKind::kMaxPool);
  EXPECT_EQ(net.layers()[11].out_shape.h, 13);
  EXPECT_EQ(net.layers()[12].out_shape.c, 1024);
  // Heads at 13x13 and 26x26.
  EXPECT_EQ(net.layers()[16].out_shape.h, 13);
  EXPECT_EQ(net.layers()[23].out_shape.h, 26);
}

TEST(Models, Yolov3TinyRunsFunctionally) {
  const Network net = make_yolov3_tiny(64);
  const NetWeights w = make_random_weights(net, 99);
  Rng rng(1);
  Tensor in(3, 64, 64);
  in.fill_random(rng, 0.0f, 1.0f);
  const Tensor out =
      run_inference(net, w, in, uniform_plan(net, Algo::kGemm3), VpuConfig{});
  EXPECT_EQ(out.c(), 255);
  EXPECT_EQ(out.h(), 4);  // 64/16 upsampled head
}

TEST(NetworkBuilder, MaxpoolPaddingSemantics) {
  Network net("t", {1, 13, 13});
  net.maxpool(2, 1, 1);
  EXPECT_EQ(net.layers()[0].out_shape.h, 13);
  Network bad("t", {1, 2, 2});
  EXPECT_THROW(bad.maxpool(4, 1, 0), std::invalid_argument);
}

TEST(Models, ScaledInputsPropagate) {
  const Network vgg = make_vgg16(64);
  EXPECT_EQ(vgg.conv_descs()[0].ih, 64);
  EXPECT_EQ(vgg.conv_descs()[12].ih, 4);
  const Network yolo = make_yolov3(20, 128);
  EXPECT_EQ(yolo.conv_descs()[1].oh(), 64);
  EXPECT_THROW(make_vgg16(100), std::invalid_argument);
  EXPECT_THROW(make_yolov3(20, 100), std::invalid_argument);
}

TEST(Models, Yolov3ConvCountIn3x3Stride1) {
  // Paper I: "38 out of the 75 use 3x3 kernel-sized filters". The published
  // yolov3.cfg splits those 38 as 33 stride-1 + 5 stride-2 (the paper's
  // "32 + 6" breakdown is off by one in each bucket; the total matches).
  const Network net = make_yolov3(-1, 608);
  int k3s1 = 0, k3s2 = 0, k1 = 0;
  for (const ConvLayerDesc& d : net.conv_descs()) {
    if (d.kh == 3 && d.stride == 1) ++k3s1;
    if (d.kh == 3 && d.stride == 2) ++k3s2;
    if (d.kh == 1) ++k1;
  }
  EXPECT_EQ(k3s1 + k3s2, 38);
  EXPECT_EQ(k3s1, 33);
  EXPECT_EQ(k3s2, 5);
  EXPECT_EQ(k1, 37);
}

// -------------------------------------------------- functional runner ------

TEST(Runner, UniformPlanFallsBackWhereInapplicable) {
  const Network net = make_yolov3(20, 128);
  const auto plan = uniform_plan(net, Algo::kWinograd);
  const auto descs = net.conv_descs();
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_TRUE(algo_applicable(plan[i], descs[i]));
    if (descs[i].kh == 3 && descs[i].stride == 1) {
      EXPECT_EQ(plan[i], Algo::kWinograd);
    } else {
      EXPECT_EQ(plan[i], Algo::kGemm6);
    }
  }
}

TEST(Runner, InferenceShapesAndDeterminism) {
  const Network net = make_yolov3(12, 64);
  const NetWeights w = make_random_weights(net, 77);
  Rng rng(5);
  Tensor in(3, 64, 64);
  in.fill_random(rng);
  const Tensor out1 =
      run_inference(net, w, in, uniform_plan(net, Algo::kGemm3), VpuConfig{});
  const Shape3 expect = net.layers().back().out_shape;
  EXPECT_EQ(out1.c(), expect.c);
  EXPECT_EQ(out1.h(), expect.h);
  const Tensor out2 =
      run_inference(net, w, in, uniform_plan(net, Algo::kGemm3), VpuConfig{});
  EXPECT_FLOAT_EQ(max_abs_diff(out1, out2), 0.0f);
}

TEST(Runner, AllAlgorithmPlansAgree) {
  // End-to-end: the network output must be (numerically) independent of the
  // per-layer algorithm choice.
  const Network net = make_yolov3(9, 64);
  const NetWeights w = make_random_weights(net, 123);
  Rng rng(9);
  Tensor in(3, 64, 64);
  in.fill_random(rng, 0.0f, 1.0f);
  const Tensor ref =
      run_inference(net, w, in, uniform_plan(net, Algo::kGemm3), VpuConfig{});
  const float scale = max_abs(ref) + 1.0f;
  for (Algo a : {Algo::kDirect, Algo::kGemm6, Algo::kWinograd}) {
    const Tensor got =
        run_inference(net, w, in, uniform_plan(net, a), VpuConfig{1024, 8});
    EXPECT_LE(max_abs_diff(ref, got), 2e-3f * scale) << to_string(a);
  }
}

TEST(Runner, VggInferenceProducesProbabilities) {
  const Network net = make_vgg16(32);
  const NetWeights w = make_random_weights(net, 31);
  Rng rng(2);
  Tensor in(3, 32, 32);
  in.fill_random(rng, 0.0f, 1.0f);
  const Tensor out =
      run_inference(net, w, in, uniform_plan(net, Algo::kGemm6), VpuConfig{});
  ASSERT_EQ(out.c(), 1000);
  double sum = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.data()[i], 0.0f);
    sum += out.data()[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(Runner, RejectsBadPlanOrInput) {
  const Network net = make_yolov3(6, 64);
  const NetWeights w = make_random_weights(net, 1);
  Tensor in(3, 64, 64);
  EXPECT_THROW(run_inference(net, w, in, {Algo::kGemm3}, VpuConfig{}),
               std::invalid_argument);
  Tensor bad(3, 32, 32);
  EXPECT_THROW(run_inference(net, w, bad, uniform_plan(net, Algo::kGemm3),
                             VpuConfig{}),
               std::invalid_argument);
}

// ------------------------------------------------------ profiling ----------

TEST(Profiler, SumsConvLayerCycles) {
  const Network net = make_yolov3(6, 64);
  SimConfig c = make_sim_config(512, 1u << 20);
  const auto plan = uniform_plan(net, Algo::kGemm3);
  const NetworkTiming t = profile_network(net, c, plan);
  ASSERT_EQ(t.conv_layers.size(), net.conv_descs().size());
  double sum = 0;
  for (const LayerTiming& lt : t.conv_layers) {
    EXPECT_GT(lt.stats.cycles, 0.0);
    sum += lt.stats.cycles;
  }
  EXPECT_DOUBLE_EQ(sum, t.total_cycles);
}

TEST(Profiler, PlanSizeValidated) {
  const Network net = make_yolov3(6, 64);
  SimConfig c = make_sim_config(512, 1u << 20);
  EXPECT_THROW(profile_network(net, c, {Algo::kGemm3}), std::invalid_argument);
}

}  // namespace
}  // namespace vlacnn

// Object-detection scenario (the paper's motivating YOLOv3 workload):
//
//  1. run a scaled-down YOLOv3 numerically end to end (all 107-layer
//     machinery: conv, shortcut, route, upsample, detection heads) to show the
//     substrate works as a network, and
//  2. profile the paper-scale first-20-layers prefix on a simulated 1024-bit
//     RVV core, comparing a single-algorithm plan against per-layer heuristic
//     selection.
//
//   ./examples/yolo_detection_profile
#include <cstdio>

#include "common/rng.h"
#include "core/selector.h"
#include "net/models.h"
#include "net/runner.h"

using namespace vlacnn;

int main() {
  // --- 1. functional end-to-end inference on a 96x96 input ---------------
  const Network small = make_yolov3(-1, 96);
  std::printf("yolov3 @ 96x96: %zu layers, %zu conv\n", small.layers().size(),
              small.conv_descs().size());
  const NetWeights weights = make_random_weights(small, 2024);
  Rng rng(7);
  Tensor image(3, 96, 96);
  image.fill_random(rng, 0.0f, 1.0f);

  HeuristicSelector selector;
  std::vector<Algo> plan;
  for (const ConvLayerDesc& d : small.conv_descs()) {
    plan.push_back(selector.select(d, 1024, 4u << 20));
  }
  const Tensor detections =
      run_inference(small, weights, image, plan, VpuConfig{1024, 8});
  std::printf("final detection head output: %dx%dx%d (stride-8 head)\n",
              detections.c(), detections.h(), detections.w());

  // --- 2. paper-scale profile of the first 20 layers ---------------------
  const Network net = make_yolov3(20, 608);
  SimConfig config = make_sim_config(1024, 4u << 20);

  const auto gemm_plan = uniform_plan(net, Algo::kGemm6);
  std::vector<Algo> selected;
  for (const ConvLayerDesc& d : net.conv_descs()) {
    selected.push_back(selector.select(d, 1024, 4u << 20));
  }

  const NetworkTiming fixed = profile_network(net, config, gemm_plan);
  const NetworkTiming tuned = profile_network(net, config, selected);

  std::printf("\nper-layer profile @ 1024-bit x 4MB (ms @ 2GHz):\n");
  std::printf("%5s %-28s %10s | %-9s %10s\n", "conv", "dimensions", "gemm6",
              "selected", "time");
  const std::vector<ConvLayerDesc> descs = net.conv_descs();
  for (std::size_t i = 0; i < fixed.conv_layers.size(); ++i) {
    const std::string dims = descs[i].to_string().substr(0, 28);
    std::printf("%5zu %-28s %8.2f   | %-9s %8.2f\n", i + 1, dims.c_str(),
                fixed.conv_layers[i].stats.cycles / 2e9 * 1e3,
                to_string(tuned.conv_layers[i].algo),
                tuned.conv_layers[i].stats.cycles / 2e9 * 1e3);
  }
  std::printf("\ntotal: gemm6-everywhere %.1f ms, per-layer selection %.1f ms "
              "(%.2fx)\n",
              fixed.total_cycles / 2e9 * 1e3, tuned.total_cycles / 2e9 * 1e3,
              fixed.total_cycles / tuned.total_cycles);
  return 0;
}

// Co-design explorer: sweep vector length x L2 size for one convolutional
// layer and print the winning algorithm at every hardware point — the per-layer
// view behind the paper's co-design study, as an interactive tool.
//
//   ./examples/codesign_explorer [ic ih iw oc k stride pad]
//   (default: YOLOv3 conv #10: 128x152x152 -> 256, 3x3 s2)
#include <cstdio>
#include <cstdlib>

#include "algos/registry.h"
#include "core/selector.h"

using namespace vlacnn;

int main(int argc, char** argv) {
  ConvLayerDesc d{128, 152, 152, 256, 3, 3, 2, 1};
  if (argc == 8) {
    d.ic = std::atoi(argv[1]);
    d.ih = std::atoi(argv[2]);
    d.iw = std::atoi(argv[3]);
    d.oc = std::atoi(argv[4]);
    d.kh = d.kw = std::atoi(argv[5]);
    d.stride = std::atoi(argv[6]);
    d.pad = std::atoi(argv[7]);
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [ic ih iw oc k stride pad]\n", argv[0]);
    return 2;
  }
  std::printf("layer: %s  (%.1f MMACs, GEMM %llux%llux%llu)\n",
              d.to_string().c_str(), d.macs() / 1e6,
              static_cast<unsigned long long>(d.gemm_m()),
              static_cast<unsigned long long>(d.gemm_k()),
              static_cast<unsigned long long>(d.gemm_n()));

  const std::uint32_t vlens[] = {512, 1024, 2048, 4096};
  const std::uint64_t l2s[] = {1u << 20, 4u << 20, 16u << 20, 64u << 20};

  std::printf("\nwinner map (rows: vlen, cols: L2); time in ms @ 2GHz\n");
  std::printf("%10s", "");
  for (std::uint64_t l2 : l2s) {
    std::printf(" %18lluMB", static_cast<unsigned long long>(l2 >> 20));
  }
  std::printf("\n");

  HeuristicSelector heuristic;
  for (std::uint32_t vlen : vlens) {
    std::printf("%7u-bit", vlen);
    for (std::uint64_t l2 : l2s) {
      double best = 1e300;
      Algo winner = Algo::kGemm6;
      for (Algo a : kAllAlgos) {
        if (!algo_applicable(a, d)) continue;
        SimConfig c = make_sim_config(vlen, l2);
        const double cycles = conv_simulate(a, d, c).cycles;
        if (cycles < best) {
          best = cycles;
          winner = a;
        }
      }
      std::printf(" %9s %7.2fms", to_string(winner), best / 2e9 * 1e3);
    }
    std::printf("\n");
  }

  std::printf("\nheuristic selector would pick: ");
  for (std::uint32_t vlen : vlens) {
    std::printf("%u-bit:%s  ", vlen,
                to_string(heuristic.select(d, vlen, 4u << 20)));
  }
  std::printf("\n");
  return 0;
}

// Quickstart: the ConvEngine front door in ~60 lines.
//
// Builds a convolutional layer, runs it numerically with each of the four
// algorithms (validating against the scalar reference), asks the engine for
// per-algorithm cycle estimates on the configured vector architecture, and
// lets the selector pick.
//
//   ./examples/quickstart
#include <cstdio>

#include "algos/reference.h"
#include "core/conv_engine.h"
#include "common/rng.h"

using namespace vlacnn;

int main() {
  // A mid-network layer: 32 -> 32 channels, 28x28, 3x3 stride 1.
  const ConvLayerDesc layer{32, 28, 28, 32, 3, 3, 1, 1};
  std::printf("layer: %s  (%.1f MMACs)\n", layer.to_string().c_str(),
              layer.macs() / 1e6);

  // Target architecture: 1024-bit vectors, 8 lanes, 4 MB L2.
  ConvEngine engine(VpuConfig{1024, 8, VpuAttach::kIntegratedL1}, 4u << 20);

  // Synthetic input and weights.
  Rng rng(42);
  Tensor input(layer.ic, layer.ih, layer.iw);
  input.fill_random(rng);
  std::vector<float> weights(layer.weight_elems());
  fill_uniform(rng, weights.data(), weights.size(), -1.0f, 1.0f);

  // Ground truth.
  const Tensor reference = conv_reference(layer, input, weights);

  std::printf("\n%-10s %12s %14s %12s\n", "algorithm", "max |err|",
              "est. cycles", "est. time");
  for (Algo algo : kAllAlgos) {
    if (!algo_applicable(algo, layer)) continue;
    const Tensor out = engine.run(layer, input, weights, algo);
    const TimingStats est = engine.estimate(layer, algo);
    std::printf("%-10s %12.2e %14.0f %10.3f ms\n", to_string(algo),
                max_abs_diff(reference, out), est.cycles,
                est.cycles / 2.0e9 * 1e3);  // 2 GHz clock
  }

  const Algo chosen = engine.choose(layer);
  std::printf("\nselector picks: %s\n", to_string(chosen));
  const Tensor out = engine.run(layer, input, weights);  // auto-selected
  std::printf("auto-run max |err| vs reference: %.2e\n",
              max_abs_diff(reference, out));
  return 0;
}

// Model-serving capacity planner: given a VGG-16 classification service, an
// offered load, and a latency SLO, find the cheapest multicore RVV chip
// (7 nm area) on the paper's Fig-12 co-location grid that meets the SLO —
// using the request-level discrete-event simulator (queueing, batching, tail
// latency) rather than steady-state throughput alone. See DESIGN.md §10.
//
//   ./examples/vgg_serving_planner [load_rps] [slo_ms] [area_budget_mm2]
//   defaults: 2000 req/s, 50 ms, unbounded area
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "net/models.h"
#include "serving/request_sim.h"

using namespace vlacnn;
using namespace vlacnn::serving;

int main(int argc, char** argv) {
  CapacityQuery q;
  q.load_rps = argc > 1 ? std::atof(argv[1]) : 2000.0;
  q.slo_ms = argc > 2 ? std::atof(argv[2]) : 50.0;
  q.area_budget_mm2 = argc > 3 ? std::atof(argv[3]) : 0.0;
  q.policy = {BatchPolicySpec::Kind::kAdaptive, 8, 2e6};  // 1 ms flush

  std::printf("planning VGG-16 serving: %.0f req/s Poisson, %.0f ms SLO at "
              "p%.0f%s\n",
              q.load_rps, q.slo_ms, q.attainment_target * 100.0,
              q.area_budget_mm2 > 0 ? " (area-bounded)" : "");

  ResultsDb db(default_results_path());
  SweepDriver driver(&db);
  CapacityPlanner planner(&driver);
  const Network vgg = make_vgg16(224);

  const auto report = [&](const char* label, const CapacityCandidate& c) {
    const ServingEval& e = c.eval;
    std::printf("\n%s\n", label);
    std::printf("  chip: %d cores x %u-bit vectors, %lluMB shared L2 "
                "(%.2f mm2)\n",
                e.point.cores, e.point.vlen_bits,
                static_cast<unsigned long long>(e.point.l2_total_bytes >> 20),
                e.area_mm2);
    std::printf("  %d co-located instances, %lluMB L2 slice each\n",
                e.point.instances,
                static_cast<unsigned long long>(e.point.l2_slice_bytes() >>
                                                20));
    std::printf("  p50 %.2f / p99 %.2f / p99.9 %.2f ms, attainment %.2f%%, "
                "utilization %.1f%%\n",
                ServingStats::ms(c.stats.p50, q.clock_hz),
                ServingStats::ms(c.stats.p99, q.clock_hz),
                ServingStats::ms(c.stats.p999, q.clock_hz),
                c.stats.slo_attainment * 100.0, c.stats.utilization * 100.0);
  };

  // Per-layer algorithm selection (the co-design result) vs the best
  // fixed-algorithm plan, both searched over the full grid.
  const auto opt = planner.evaluate_grid(vgg, q, std::nullopt);
  const auto best_opt = CapacityPlanner::cheapest(opt);
  if (!best_opt.has_value()) {
    std::printf("no grid configuration meets the SLO at this load\n");
    return 1;
  }
  report("cheapest design, per-layer algorithm selection:", *best_opt);

  std::optional<CapacityCandidate> best_fixed;
  Algo best_algo = Algo::kGemm6;
  for (Algo a : kAllAlgos) {
    const auto cand = CapacityPlanner::cheapest(planner.evaluate_grid(vgg, q, a));
    if (cand.has_value() &&
        (!best_fixed.has_value() ||
         cand->eval.area_mm2 < best_fixed->eval.area_mm2)) {
      best_fixed = cand;
      best_algo = a;
    }
  }
  if (best_fixed.has_value()) {
    char label[96];
    std::snprintf(label, sizeof(label),
                  "cheapest design, single algorithm (%s everywhere):",
                  to_string(best_algo));
    report(label, *best_fixed);
    std::printf("\nselection advantage: %.2f mm2 vs %.2f mm2 for the same "
                "load and SLO (%.1f%% cheaper silicon)\n",
                best_opt->eval.area_mm2, best_fixed->eval.area_mm2,
                (1.0 - best_opt->eval.area_mm2 / best_fixed->eval.area_mm2) *
                    100.0);
  } else {
    std::printf("\nno single-algorithm plan meets the SLO at any grid point "
                "(selection is the difference between feasible and not)\n");
  }
  return 0;
}

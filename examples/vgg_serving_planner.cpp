// Model-serving capacity planner (the paper's Fig 12 scenario as a tool):
// given a VGG-16 classification service and a chip area budget, enumerate
// multicore RVV configurations with co-located model instances and report the
// best-throughput design under the budget, with and without per-layer
// algorithm selection.
//
//   ./examples/vgg_serving_planner [area_budget_mm2]   (default 30)
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "net/models.h"
#include "serving/serving.h"

using namespace vlacnn;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::atof(argv[1]) : 30.0;
  std::printf("planning VGG-16 serving under a %.1f mm2 area budget (7nm)\n",
              budget);

  ResultsDb db(default_results_path());
  SweepDriver driver(&db);
  ServingSimulator sim(&driver);
  const Network vgg = make_vgg16(224);

  // Moderate grid to keep the planner interactive: cores/instances {1,4,16},
  // vlen 512..4096, shared L2 up to 64 MB.
  struct Best {
    ServingEval eval{};
    bool valid = false;
  };
  Best best_opt, best_fixed;
  Algo best_fixed_algo = Algo::kGemm6;

  for (int cores : {1, 4, 16}) {
    for (std::uint32_t vlen : paper2_vlens()) {
      for (std::uint64_t l2 : paper2_l2_sizes()) {
        for (int instances : {1, 4, 16}) {
          ServingPoint p{cores, vlen, l2, instances};
          if (!p.feasible()) continue;
          const ServingEval opt = sim.evaluate(vgg, p, std::nullopt);
          if (opt.area_mm2 <= budget &&
              (!best_opt.valid ||
               opt.images_per_cycle > best_opt.eval.images_per_cycle)) {
            best_opt = {opt, true};
          }
          for (Algo a : kAllAlgos) {
            const ServingEval fx = sim.evaluate(vgg, p, a);
            if (fx.area_mm2 <= budget &&
                (!best_fixed.valid ||
                 fx.images_per_cycle > best_fixed.eval.images_per_cycle)) {
              best_fixed = {fx, true};
              best_fixed_algo = a;
            }
          }
        }
      }
    }
  }

  auto report = [](const char* label, const ServingEval& e) {
    std::printf("\n%s\n", label);
    std::printf("  chip: %d cores x %u-bit vectors, %lluMB shared L2 "
                "(%.2f mm2)\n",
                e.point.cores, e.point.vlen_bits,
                static_cast<unsigned long long>(e.point.l2_total_bytes >> 20),
                e.area_mm2);
    std::printf("  %d co-located instances, %lluMB L2 slice each\n",
                e.point.instances,
                static_cast<unsigned long long>(e.point.l2_slice_bytes() >> 20));
    std::printf("  latency %.1f ms/image, throughput %.1f images/s @ 2GHz\n",
                e.cycles_per_image / 2e9 * 1e3, e.images_per_cycle * 2e9);
  };

  if (!best_opt.valid) {
    std::printf("no feasible configuration under %.1f mm2\n", budget);
    return 1;
  }
  report("best design, per-layer algorithm selection:", best_opt.eval);
  char label[96];
  std::snprintf(label, sizeof(label),
                "best design, single algorithm (%s everywhere):",
                to_string(best_fixed_algo));
  report(label, best_fixed.eval);
  std::printf("\nselection advantage: %.2fx throughput at equal area budget\n",
              best_opt.eval.images_per_cycle /
                  best_fixed.eval.images_per_cycle);
  return 0;
}

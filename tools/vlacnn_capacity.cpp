// vlacnn-capacity: SLO capacity planner over the Fig-12 co-location grid.
//
//   vlacnn-capacity --net vgg16 --load 2000rps --slo 50ms
//
// Simulates every feasible (cores x vlen x shared-L2 x instances)
// configuration under seeded Poisson traffic with the request-level
// discrete-event simulator (DESIGN.md §10) and reports the cheapest chip
// (7 nm area) that meets the latency SLO at the offered load.
//
// Flags:
//   --net vgg16|yolo20        network (default vgg16)
//   --load N[rps]             offered Poisson load, requests/s (default 1000)
//   --slo N[ms]               latency deadline, milliseconds (default 50)
//   --attainment F            required fraction inside the SLO (default 0.99)
//   --requests N              simulated requests per grid point (default 2000)
//   --seed N                  arrival-process seed (default 42)
//   --policy nobatch|maxbatch|adaptive   batching policy (default adaptive)
//   --max-batch N             policy batch bound (default 8)
//   --flush-ms F              adaptive flush timeout, ms (default 1)
//   --queue N                 queue bound, 0 = unbounded (default 0)
//   --area-budget F           max chip area mm2, 0 = unbounded (default 0)
//   --dispatch MODE           per-layer algorithm selection: oracle (default,
//                             per-layer-optimal sweep rows), learned (train
//                             the paper's random forest on this net and run
//                             it in the request loop with its inference cost
//                             charged), or fixed:<algo> (one algorithm
//                             everywhere, gemm6 fallback)
//   --dispatch-cycles N       learned mode: selector cycles charged per image
//                             per layer (default from bench_dispatch_overhead
//                             calibration; env override VLACNN_DISPATCH_CYCLES)
//   --json FILE               also write the full candidate list as JSON;
//                             byte-stable across runs and VLACNN_THREADS
//   --timeline FILE           record a per-grid-point serving timeline to
//                             FILE as JSONL (same as VLACNN_TIMELINE=FILE;
//                             cadence via VLACNN_TIMELINE_INTERVAL). Inspect
//                             with `vlacnn-report timeline FILE`. Byte-stable
//                             across runs and VLACNN_THREADS.
//   --reqtrace FILE           record per-request traces (tail-sampled; see
//                             VLACNN_REQTRACE_TOPK / VLACNN_REQTRACE_HEAD)
//                             per grid point to FILE as JSONL (same as
//                             VLACNN_REQTRACE=FILE). Inspect with
//                             `vlacnn-report requests FILE`. Byte-stable
//                             across runs and VLACNN_THREADS.
//
// Fleet mode (DESIGN.md §15):
//
//   vlacnn-capacity fleet --mix vgg16=0.7,yolo20=0.3 --load 3000 --slo 60ms
//
// Searches multi-chip fleet compositions (chip types drawn from the
// area/throughput Pareto frontier, up to --max-chips chips) for the cheapest
// total silicon that carries the mixed Poisson load inside the SLO, routed by
// a pluggable front-end policy. Fleet-only flags:
//   --mix NAME=W[,NAME=W...]  traffic mix over vgg16/yolo20 with positive
//                             weights (default vgg16=0.7,yolo20=0.3)
//   --router rr|jsq|p2c       routing policy (default jsq)
//   --fleet-seed N            router seed (default VLACNN_FLEET_SEED, else 1)
//   --hop N                   constant front-end hop, cycles (default 0)
//   --max-chips N             largest fleet size searched (default 4)
//   --chip-types N            Pareto menu size (default 5)
// Shared flags (--load/--slo/--attainment/--requests/--seed/--policy/
// --max-batch/--flush-ms/--queue/--area-budget/--json/--timeline/--reqtrace)
// keep their single-chip meaning; --json emits a vlacnn.fleet.v1 document,
// byte-identical across runs and VLACNN_THREADS.
//
// Exit codes: 0 = a configuration meets the SLO, 1 = infeasible (or another
// runtime failure), 2 = usage error (bad flag/value; usage goes to stderr).
//
// The sweep cache (results/sweep_cache.csv, override REPRO_RESULTS_DIR) makes
// warm runs fast; a cold run simulates the grid points it needs first.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dispatch/learned_dispatcher.h"
#include "ml/dataset.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/timeline.h"
#include "ml/random_forest.h"
#include "net/models.h"
#include "report/collector.h"
#include "report/json.h"
#include "serving/fleet_planner.h"
#include "serving/request_sim.h"
#include "sweep/results_db.h"
#include "sweep/sweep.h"

using namespace vlacnn;
using namespace vlacnn::serving;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--net vgg16|yolo20] [--load N[rps]] [--slo N[ms]]\n"
               "          [--attainment F] [--requests N] [--seed N]\n"
               "          [--policy nobatch|maxbatch|adaptive] [--max-batch N]\n"
               "          [--flush-ms F] [--queue N] [--area-budget F]\n"
               "          [--dispatch oracle|learned|fixed:<algo>]\n"
               "          [--dispatch-cycles N] [--json FILE] "
               "[--timeline FILE]\n"
               "          [--reqtrace FILE]\n",
               argv0);
  return 2;
}

/// Parse "2000rps" / "2000" / "50ms" / "50": a positive number with an
/// optional unit suffix that must match `unit` exactly when present.
double suffixed(const char* flag, const char* value, const char* unit) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  const std::string rest = std::string(value).substr(pos);
  if (pos == 0 || (!rest.empty() && rest != unit) || !(v > 0)) {
    throw std::runtime_error(std::string(flag) + " expects a positive number" +
                             " (optionally suffixed '" + unit + "'), got '" +
                             value + "'");
  }
  return v;
}

std::string point_json(const ServingPoint& p) {
  std::string out = "{";
  out += "\"cores\": " + std::to_string(p.cores);
  out += ", \"vlen_bits\": " + std::to_string(p.vlen_bits);
  out += ", \"l2_total_bytes\": " + std::to_string(p.l2_total_bytes);
  out += ", \"instances\": " + std::to_string(p.instances);
  out += "}";
  return out;
}

std::string candidate_json(const CapacityCandidate& c) {
  using report::json_number;
  std::string out = "{";
  out += "\"point\": " + point_json(c.eval.point);
  out += ", \"area_mm2\": " + json_number(c.eval.area_mm2);
  out += ", \"cycles_per_image\": " + json_number(c.eval.cycles_per_image);
  out += ", \"meets_slo\": " + std::string(c.meets_slo ? "true" : "false");
  out += ", \"stats\": " + c.stats.to_json();
  out += "}";
  return out;
}

int fleet_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s fleet [--mix NAME=W[,NAME=W...]] [--load N[rps]]\n"
               "          [--slo N[ms]] [--attainment F] [--requests N]\n"
               "          [--seed N] [--router rr|jsq|p2c] [--fleet-seed N]\n"
               "          [--hop N] [--max-chips N] [--chip-types N]\n"
               "          [--policy nobatch|maxbatch|adaptive] [--max-batch N]\n"
               "          [--flush-ms F] [--queue N] [--area-budget F]\n"
               "          [--json FILE] [--timeline FILE] [--reqtrace FILE]\n",
               argv0);
  return 2;
}

/// Parse "vgg16=0.7,yolo20=0.3" into a FleetTrafficMix (names + weights;
/// normalization happens in the mix itself). Throws on anything malformed.
serving::FleetTrafficMix parse_mix(const std::string& text) {
  serving::FleetTrafficMix mix;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string term = text.substr(pos, comma - pos);
    const std::size_t eq = term.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= term.size()) {
      throw std::runtime_error("--mix expects NAME=WEIGHT terms, got '" +
                               term + "'");
    }
    const std::string name = term.substr(0, eq);
    double w = 0;
    try {
      w = std::stod(term.substr(eq + 1));
    } catch (const std::exception&) {
      w = 0;
    }
    if (!(w > 0)) {
      throw std::runtime_error("--mix weight for '" + name +
                               "' must be positive");
    }
    mix.names.push_back(name);
    mix.shares.push_back(w);
    pos = comma + 1;
  }
  if (mix.names.empty()) throw std::runtime_error("--mix is empty");
  return mix;
}

std::string fleet_candidate_json(const serving::FleetCandidate& c) {
  using report::json_number;
  using report::json_quote;
  std::string out = "{";
  out += "\"label\": " + json_quote(c.label);
  out += ", \"counts\": [";
  for (std::size_t i = 0; i < c.counts.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(c.counts[i]);
  }
  out += "]";
  out += ", \"total_area_mm2\": " + json_number(c.total_area_mm2);
  out += ", \"simulated\": " + std::string(c.simulated ? "true" : "false");
  out += ", \"meets_slo\": " + std::string(c.meets_slo ? "true" : "false");
  out += ", \"stats\": ";
  out += c.simulated ? c.stats.to_json() : "null";
  out += "}";
  return out;
}

/// The `fleet` subcommand: search fleet compositions for the cheapest total
/// silicon meeting the mixed-traffic SLO. argv[1] == "fleet" already checked.
int run_fleet(int argc, char** argv) {
  std::string mix_text = "vgg16=0.7,yolo20=0.3";
  std::string json_path;
  serving::FleetQuery q;
  q.policy = {BatchPolicySpec::Kind::kAdaptive, 8, 2e6};  // 1 ms at 2 GHz
  std::string policy_name = "adaptive";
  std::string router_name = "jsq";
  double flush_ms = 1.0;
  bool fleet_seed_set = false;
  serving::FleetTrafficMix mix;

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::runtime_error(flag + " expects a value");
        }
        return argv[++i];
      };
      if (flag == "--mix") {
        mix_text = next();
      } else if (flag == "--load") {
        q.load_rps = suffixed("--load", next(), "rps");
      } else if (flag == "--slo") {
        q.slo_ms = suffixed("--slo", next(), "ms");
      } else if (flag == "--attainment") {
        q.attainment_target = std::atof(next());
      } else if (flag == "--requests") {
        q.requests = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--seed") {
        q.seed = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--router") {
        router_name = next();
      } else if (flag == "--fleet-seed") {
        q.router.seed = std::strtoull(next(), nullptr, 10);
        fleet_seed_set = true;
      } else if (flag == "--hop") {
        q.router_hop_cycles = std::atof(next());
      } else if (flag == "--max-chips") {
        q.max_chips = std::atoi(next());
      } else if (flag == "--chip-types") {
        q.max_chip_types = std::atoi(next());
      } else if (flag == "--policy") {
        policy_name = next();
      } else if (flag == "--max-batch") {
        q.policy.max_batch = std::atoi(next());
      } else if (flag == "--flush-ms") {
        flush_ms = suffixed("--flush-ms", next(), "ms");
      } else if (flag == "--queue") {
        q.queue_capacity = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--area-budget") {
        q.area_budget_mm2 = std::atof(next());
      } else if (flag == "--json") {
        json_path = next();
      } else if (flag == "--timeline") {
        vlacnn::obs::set_timeline_path(next());
      } else if (flag == "--reqtrace") {
        vlacnn::obs::set_reqtrace_path(next());
      } else {
        std::fprintf(stderr, "vlacnn-capacity: unknown fleet flag '%s'\n",
                     flag.c_str());
        return fleet_usage(argv[0]);
      }
    }
    if (policy_name == "nobatch") {
      q.policy.kind = BatchPolicySpec::Kind::kNoBatch;
    } else if (policy_name == "maxbatch") {
      q.policy.kind = BatchPolicySpec::Kind::kMaxBatch;
    } else if (policy_name == "adaptive") {
      q.policy.kind = BatchPolicySpec::Kind::kAdaptive;
    } else {
      throw std::runtime_error("unknown --policy '" + policy_name + "'");
    }
    q.policy.timeout_cycles = flush_ms * 1e-3 * q.clock_hz;
    q.router.kind = serving::router_kind_from_string(router_name);
    if (!fleet_seed_set) q.router.seed = serving::default_fleet_seed();
    if (!(q.attainment_target > 0) || q.attainment_target > 1 ||
        q.requests == 0 || q.policy.max_batch < 1 || q.max_chips < 1 ||
        q.max_chip_types < 1 || !(q.router_hop_cycles >= 0)) {
      throw std::runtime_error("invalid query parameters");
    }
    // Mix syntax and model names are part of the command line: a typo is a
    // usage error (exit 2), same as --net on the single-chip path.
    mix = parse_mix(mix_text);
    mix.seed = q.seed;
    for (const std::string& name : mix.names) {
      if (name != "vgg16" && name != "yolo20") {
        throw std::runtime_error("unknown mix model '" + name +
                                 "' (vgg16 or yolo20)");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vlacnn-capacity: %s\n", e.what());
    return fleet_usage(argv[0]);
  }

  try {
    std::vector<Network> nets;
    for (const std::string& name : mix.names) {
      nets.push_back(name == "vgg16" ? make_vgg16(224)
                                     : make_yolov3(20, 608));
    }

    report::arm_exit_report("fleet plan");

    ResultsDb db(default_results_path());
    SweepDriver driver(&db);
    serving::FleetPlanner planner(&driver);

    std::printf("fleet plan: mix %s, %.0f req/s Poisson, %.0f ms SLO at "
                "p%.4g, router %s (seed %llu), <= %d chips over %d types\n",
                mix.to_string().c_str(), q.load_rps, q.slo_ms,
                q.attainment_target * 100.0, router_name.c_str(),
                static_cast<unsigned long long>(q.router.seed), q.max_chips,
                q.max_chip_types);

    const serving::FleetPlan plan = planner.plan(nets, mix, q);

    std::size_t simulated = 0, feasible = 0;
    for (const auto& c : plan.candidates) {
      simulated += c.simulated ? 1 : 0;
      feasible += c.meets_slo ? 1 : 0;
    }
    std::printf("%zu compositions enumerated over %zu chip types "
                "(%zu simulated, %zu pruned); %zu meet the SLO%s\n",
                plan.candidates.size(), plan.chip_types.size(), simulated,
                plan.candidates.size() - simulated, feasible,
                q.area_budget_mm2 > 0 ? " inside the area budget" : "");

    auto print_best = [&](const char* tag,
                          const std::optional<serving::FleetCandidate>& b) {
      if (!b.has_value()) {
        std::printf("%s: none meets the SLO at this load\n", tag);
        return;
      }
      const ServingStats& s = b->stats.fleet;
      std::printf("%s: %s = %.2f mm2 (7nm)\n", tag, b->label.c_str(),
                  b->total_area_mm2);
      std::printf("  p50 %.2f ms, p99 %.2f ms, p99.9 %.2f ms @ 2GHz, "
                  "attainment %.2f%%, utilization %.1f%%, mean hop %.4g cyc\n",
                  ServingStats::ms(s.p50, q.clock_hz),
                  ServingStats::ms(s.p99, q.clock_hz),
                  ServingStats::ms(s.p999, q.clock_hz),
                  s.slo_attainment * 100.0, s.utilization * 100.0,
                  b->stats.mean_router_hop);
    };
    print_best("cheapest fleet", plan.best);
    print_best("cheapest homogeneous", plan.best_homogeneous);
    if (plan.best.has_value() && plan.best_homogeneous.has_value() &&
        plan.best_homogeneous->total_area_mm2 > plan.best->total_area_mm2) {
      std::printf("heterogeneity saves %.2f mm2 (%.1f%%)\n",
                  plan.best_homogeneous->total_area_mm2 -
                      plan.best->total_area_mm2,
                  100.0 * (1.0 - plan.best->total_area_mm2 /
                                     plan.best_homogeneous->total_area_mm2));
    }

    if (!json_path.empty()) {
      using report::json_number;
      using report::json_quote;
      std::string out = "{\n  \"schema\": \"vlacnn.fleet.v1\",\n";
      out += "  \"mix\": " + json_quote(mix.to_string()) + ",\n";
      out += "  \"query\": {\"load_rps\": " + json_number(q.load_rps);
      out += ", \"slo_ms\": " + json_number(q.slo_ms);
      out += ", \"attainment_target\": " + json_number(q.attainment_target);
      out += ", \"requests\": " + std::to_string(q.requests);
      out += ", \"seed\": " + std::to_string(q.seed);
      out += ", \"router\": " + json_quote(router_name);
      out += ", \"fleet_seed\": " + std::to_string(q.router.seed);
      out += ", \"router_hop_cycles\": " + json_number(q.router_hop_cycles);
      out += ", \"max_chips\": " + std::to_string(q.max_chips);
      out += ", \"chip_types\": " + std::to_string(q.max_chip_types);
      out += ", \"policy\": " + json_quote(policy_name);
      out += ", \"max_batch\": " + std::to_string(q.policy.max_batch);
      out += ", \"flush_ms\": " + json_number(flush_ms);
      out += ", \"queue_capacity\": " + std::to_string(q.queue_capacity);
      out += ", \"area_budget_mm2\": " + json_number(q.area_budget_mm2);
      out += "},\n  \"chip_types\": [\n";
      for (std::size_t i = 0; i < plan.chip_types.size(); ++i) {
        out += "    " + point_json(plan.chip_types[i]);
        if (i + 1 < plan.chip_types.size()) out += ",";
        out += "\n";
      }
      out += "  ],\n  \"candidates\": [\n";
      for (std::size_t i = 0; i < plan.candidates.size(); ++i) {
        out += "    " + fleet_candidate_json(plan.candidates[i]);
        if (i + 1 < plan.candidates.size()) out += ",";
        out += "\n";
      }
      out += "  ],\n  \"best\": ";
      out += plan.best.has_value() ? fleet_candidate_json(*plan.best) : "null";
      out += ",\n  \"best_homogeneous\": ";
      out += plan.best_homogeneous.has_value()
                 ? fleet_candidate_json(*plan.best_homogeneous)
                 : "null";
      out += "\n}\n";
      std::ofstream f(json_path, std::ios::trunc);
      if (!f) throw std::runtime_error("cannot write " + json_path);
      f << out;
      std::printf("wrote %s (%zu candidates)\n", json_path.c_str(),
                  plan.candidates.size());
    }
    if (vlacnn::obs::timeline_enabled()) {
      std::printf("timeline: %zu run blocks -> %s (written at exit)\n",
                  vlacnn::obs::TimelineSink::global().block_count(),
                  vlacnn::obs::timeline_path().c_str());
    }
    if (vlacnn::obs::reqtrace_enabled()) {
      std::printf("reqtrace: %zu run blocks -> %s (written at exit)\n",
                  vlacnn::obs::ReqTraceSink::global().block_count(),
                  vlacnn::obs::reqtrace_path().c_str());
    }
    return plan.best.has_value() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vlacnn-capacity: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Arm the obs exit hooks before any flag parsing can throw: a run that dies
  // on a bad CLI value still flushes its VLACNN_TRACE/VLACNN_METRICS output
  // (the tracer only writes if its singleton was constructed before exit).
  vlacnn::obs::install_exit_report();
  if (argc > 1 && std::strcmp(argv[1], "fleet") == 0) {
    return run_fleet(argc, argv);
  }
  std::string net_name = "vgg16";
  std::string json_path;
  CapacityQuery q;
  q.policy = {BatchPolicySpec::Kind::kAdaptive, 8, 2e6};  // 1 ms at 2 GHz
  std::string policy_name = "adaptive";
  double flush_ms = 1.0;
  std::string dispatch_mode = "oracle";
  double dispatch_cycles = 0;  // 0 = default_dispatch_cycles()

  // Parse phase: any failure here is a usage error — message plus usage to
  // stderr, exit 2. Runtime failures below exit 1 instead (the contract
  // scripts/test_cli_exit_codes.sh asserts).
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::runtime_error(flag + " expects a value");
        }
        return argv[++i];
      };
      if (flag == "--net") {
        net_name = next();
      } else if (flag == "--load") {
        q.load_rps = suffixed("--load", next(), "rps");
      } else if (flag == "--slo") {
        q.slo_ms = suffixed("--slo", next(), "ms");
      } else if (flag == "--attainment") {
        q.attainment_target = std::atof(next());
      } else if (flag == "--requests") {
        q.requests = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--seed") {
        q.seed = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--policy") {
        policy_name = next();
      } else if (flag == "--max-batch") {
        q.policy.max_batch = std::atoi(next());
      } else if (flag == "--flush-ms") {
        flush_ms = suffixed("--flush-ms", next(), "ms");
      } else if (flag == "--queue") {
        q.queue_capacity = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--area-budget") {
        q.area_budget_mm2 = std::atof(next());
      } else if (flag == "--dispatch") {
        dispatch_mode = next();
      } else if (flag == "--dispatch-cycles") {
        dispatch_cycles = suffixed("--dispatch-cycles", next(), "");
      } else if (flag == "--json") {
        json_path = next();
      } else if (flag == "--timeline") {
        vlacnn::obs::set_timeline_path(next());
      } else if (flag == "--reqtrace") {
        vlacnn::obs::set_reqtrace_path(next());
      } else {
        std::fprintf(stderr, "vlacnn-capacity: unknown flag '%s'\n",
                     flag.c_str());
        return usage(argv[0]);
      }
    }
    if (policy_name == "nobatch") {
      q.policy.kind = BatchPolicySpec::Kind::kNoBatch;
    } else if (policy_name == "maxbatch") {
      q.policy.kind = BatchPolicySpec::Kind::kMaxBatch;
    } else if (policy_name == "adaptive") {
      q.policy.kind = BatchPolicySpec::Kind::kAdaptive;
    } else {
      throw std::runtime_error("unknown --policy '" + policy_name + "'");
    }
    q.policy.timeout_cycles = flush_ms * 1e-3 * q.clock_hz;
    if (!(q.attainment_target > 0) || q.attainment_target > 1 ||
        q.requests == 0 || q.policy.max_batch < 1) {
      throw std::runtime_error("invalid query parameters");
    }
    if (net_name != "vgg16" && net_name != "yolo20") {
      throw std::runtime_error("unknown --net '" + net_name +
                               "' (vgg16 or yolo20)");
    }
    if (dispatch_mode.rfind("fixed:", 0) == 0) {
      algo_from_string(dispatch_mode.substr(6));  // throws on an unknown algo
    } else if (dispatch_mode != "oracle" && dispatch_mode != "learned") {
      throw std::runtime_error("unknown --dispatch '" + dispatch_mode +
                               "' (oracle, learned, or fixed:<algo>)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vlacnn-capacity: %s\n", e.what());
    return usage(argv[0]);
  }

  try {
    Network net = net_name == "vgg16" ? make_vgg16(224) : make_yolov3(20, 608);

    // When VLACNN_REPORT is set, write <dir>/capacity_plan_<net>.report.json
    // at exit — with --dispatch learned it carries the per-point DispatchCells
    // (oracle gap, explorations) that vlacnn-report summarize tabulates.
    report::arm_exit_report("capacity plan " + net.name());

    ResultsDb db(default_results_path());
    SweepDriver driver(&db);
    CapacityPlanner planner(&driver);

    std::printf("capacity plan: %s, %.0f req/s Poisson, %.0f ms SLO at "
                "p%.4g, policy %s, dispatch %s\n",
                net.name().c_str(), q.load_rps, q.slo_ms,
                q.attainment_target * 100.0, policy_name.c_str(),
                dispatch_mode.c_str());

    // Resolved (flag, then env knob, then calibrated default) only on the
    // learned path; 0 in the JSON marks the selector as not in the loop.
    double effective_dispatch_cycles = 0;
    const auto candidates = [&] {
      if (dispatch_mode == "oracle") {
        return planner.evaluate_grid(net, q, std::nullopt);
      }
      if (dispatch_mode.rfind("fixed:", 0) == 0) {
        return planner.evaluate_grid(
            net, q, algo_from_string(dispatch_mode.substr(6)));
      }
      if (dispatch_mode == "learned") {
        dispatch::DispatchConfig dc;
        dc.dispatch_cycles_per_layer =
            dispatch_cycles > 0 ? dispatch_cycles
                                : dispatch::default_dispatch_cycles();
        effective_dispatch_cycles = dc.dispatch_cycles_per_layer;
        // Train the paper's selector on this network over the Paper II
        // hardware grid — the same sweep keys the figures use, so a warm
        // cache answers every label without new simulation.
        const Dataset ds = build_selection_dataset(
            driver, {&net}, paper2_vlens(), paper2_l2_sizes());
        std::vector<std::size_t> all(ds.size());
        for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
        RandomForest forest;
        forest.fit(ds, all, ForestParams{});
        auto flat = std::make_shared<const dispatch::FlatForest>(
            forest, ds.num_classes());
        std::printf("learned dispatch: %zu-sample forest compiled to %zu "
                    "nodes, %.4g cycles/layer selector charge\n",
                    ds.size(), flat->node_count(),
                    dc.dispatch_cycles_per_layer);
        return planner.evaluate_grid(
            net, q, dispatch::learned_service_factory(flat, &driver, net, dc));
      }
      throw std::runtime_error("unknown --dispatch '" + dispatch_mode +
                               "' (oracle, learned, or fixed:<algo>)");
    }();
    std::size_t feasible = 0;
    for (const auto& c : candidates) feasible += c.meets_slo ? 1 : 0;
    std::printf("%zu/%zu grid configurations meet the SLO%s\n", feasible,
                candidates.size(),
                q.area_budget_mm2 > 0 ? " inside the area budget" : "");

    const auto best = CapacityPlanner::cheapest(candidates);
    if (best.has_value()) {
      const ServingEval& e = best->eval;
      const ServingStats& s = best->stats;
      std::printf("cheapest: %d cores x %u-bit vectors, %lluMB shared L2, "
                  "%d instances = %.2f mm2 (7nm)\n",
                  e.point.cores, e.point.vlen_bits,
                  static_cast<unsigned long long>(e.point.l2_total_bytes >>
                                                  20),
                  e.point.instances, e.area_mm2);
      std::printf("  p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, p99.9 %.2f ms "
                  "@ 2GHz\n",
                  ServingStats::ms(s.p50, q.clock_hz),
                  ServingStats::ms(s.p95, q.clock_hz),
                  ServingStats::ms(s.p99, q.clock_hz),
                  ServingStats::ms(s.p999, q.clock_hz));
      std::printf("  attainment %.2f%%, utilization %.1f%%, mean batch "
                  "%.2f, mean queue %.2f\n",
                  s.slo_attainment * 100.0, s.utilization * 100.0,
                  s.mean_batch, s.mean_queue);
      std::printf("  latency split: queue-wait %.2f ms + formation-wait "
                  "%.2f ms + service %.2f ms\n",
                  ServingStats::ms(s.mean_queue_wait, q.clock_hz),
                  ServingStats::ms(s.mean_formation_wait, q.clock_hz),
                  ServingStats::ms(s.mean_service, q.clock_hz));
    } else {
      std::printf("no configuration meets the SLO at this load\n");
    }

    if (!json_path.empty()) {
      using report::json_number;
      using report::json_quote;
      std::string out = "{\n  \"schema\": \"vlacnn.capacity.v1\",\n";
      out += "  \"net\": " + json_quote(net.name()) + ",\n";
      out += "  \"query\": {\"load_rps\": " + json_number(q.load_rps);
      out += ", \"slo_ms\": " + json_number(q.slo_ms);
      out += ", \"attainment_target\": " + json_number(q.attainment_target);
      out += ", \"requests\": " + std::to_string(q.requests);
      out += ", \"seed\": " + std::to_string(q.seed);
      out += ", \"policy\": " + json_quote(policy_name);
      out += ", \"max_batch\": " + std::to_string(q.policy.max_batch);
      out += ", \"flush_ms\": " + json_number(flush_ms);
      out += ", \"queue_capacity\": " + std::to_string(q.queue_capacity);
      out += ", \"area_budget_mm2\": " + json_number(q.area_budget_mm2);
      out += ", \"dispatch\": " + json_quote(dispatch_mode);
      out += ", \"dispatch_cycles_per_layer\": " +
             json_number(effective_dispatch_cycles);
      out += "},\n  \"candidates\": [\n";
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        out += "    " + candidate_json(candidates[i]);
        if (i + 1 < candidates.size()) out += ",";
        out += "\n";
      }
      out += "  ],\n  \"cheapest\": ";
      out += best.has_value() ? candidate_json(*best) : "null";
      out += "\n}\n";
      std::ofstream f(json_path, std::ios::trunc);
      if (!f) throw std::runtime_error("cannot write " + json_path);
      f << out;
      std::printf("wrote %s (%zu candidates)\n", json_path.c_str(),
                  candidates.size());
    }
    if (vlacnn::obs::timeline_enabled()) {
      std::printf("timeline: %zu run blocks -> %s (written at exit)\n",
                  vlacnn::obs::TimelineSink::global().block_count(),
                  vlacnn::obs::timeline_path().c_str());
    }
    if (vlacnn::obs::reqtrace_enabled()) {
      std::printf("reqtrace: %zu run blocks -> %s (written at exit)\n",
                  vlacnn::obs::ReqTraceSink::global().block_count(),
                  vlacnn::obs::reqtrace_path().c_str());
    }
    return best.has_value() ? 0 : 1;
  } catch (const std::exception& e) {
    // Runtime failure (sweep/simulation/IO): exit 1, same as "no feasible
    // configuration" — distinct from the usage-error exit 2 above.
    std::fprintf(stderr, "vlacnn-capacity: %s\n", e.what());
    return 1;
  }
}

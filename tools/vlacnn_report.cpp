// vlacnn-report: inspect and gate on the structured run reports the bench
// drivers emit under VLACNN_REPORT=<dir> (see DESIGN.md §9).
//
//   vlacnn-report summarize <report.json>
//       ASCII attribution/roofline table of one report.
//
//   vlacnn-report diff <baseline.json> <current.json>
//                      [--budget-pct N] [--wall-budget-pct N]
//       Compare per-grid-point cycle counts against a committed baseline.
//       Exit 0 when every shared point (and the total) is within the cycle
//       budget (default 2%); exit 1 on any regression over budget. Wall time
//       is only gated when --wall-budget-pct is given (wall clock is noisy
//       across machines; cycles are deterministic).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "report/report.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summarize <report.json>\n"
               "       %s diff <baseline.json> <current.json> "
               "[--budget-pct N] [--wall-budget-pct N]\n",
               argv0, argv0);
  return 2;
}

vlacnn::report::RunReport load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return vlacnn::report::report_from_json(ss.str());
}

double pct_arg(const char* flag, const char* value) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != std::string(value).size() || v < 0) {
    throw std::runtime_error(std::string(flag) +
                             " expects a non-negative number, got '" + value +
                             "'");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vlacnn::report;
  try {
    if (argc < 2) return usage(argv[0]);
    const std::string cmd = argv[1];
    if (cmd == "summarize") {
      if (argc != 3) return usage(argv[0]);
      std::fputs(summarize(load(argv[2])).c_str(), stdout);
      return 0;
    }
    if (cmd == "diff") {
      if (argc < 4) return usage(argv[0]);
      DiffOptions opt;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if ((flag == "--budget-pct" || flag == "--wall-budget-pct") &&
            i + 1 < argc) {
          const double v = pct_arg(flag.c_str(), argv[++i]);
          (flag == "--budget-pct" ? opt.cycle_budget_pct
                                  : opt.wall_budget_pct) = v;
        } else {
          std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                       flag.c_str());
          return usage(argv[0]);
        }
      }
      const RunReport base = load(argv[2]);
      const RunReport cur = load(argv[3]);
      const DiffResult d = diff_reports(base, cur, opt);
      std::fputs(diff_to_string(d, opt).c_str(), stdout);
      return d.ok() ? 0 : 1;
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vlacnn-report: %s\n", e.what());
    return 2;
  }
}

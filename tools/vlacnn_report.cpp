// vlacnn-report: inspect and gate on the structured run reports the bench
// drivers emit under VLACNN_REPORT=<dir> (see DESIGN.md §9).
//
//   vlacnn-report summarize <report.json>
//       ASCII attribution/roofline table of one report.
//
//   vlacnn-report diff <baseline.json> <current.json>
//                      [--budget-pct N] [--wall-budget-pct N]
//       Compare per-grid-point cycle counts against a committed baseline.
//       Exit 0 when every shared point (and the total) is within the cycle
//       budget (default 2%); exit 1 on any regression over budget. Wall time
//       is only gated when --wall-budget-pct is given (wall clock is noisy
//       across machines; cycles are deterministic).
//
//   vlacnn-report timeline <timeline.jsonl> [--snapshots N]
//       Analyze a VLACNN_TIMELINE file: per simulated run, detect the warm-up
//       transient, summarize the steady-state window and SLO burn-rate, and
//       tabulate up to N snapshots (default 12, 0 = all).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "report/json.h"
#include "report/report.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summarize <report.json>\n"
               "       %s diff <baseline.json> <current.json> "
               "[--budget-pct N] [--wall-budget-pct N]\n"
               "       %s timeline <timeline.jsonl> [--snapshots N]\n",
               argv0, argv0, argv0);
  return 2;
}

vlacnn::report::RunReport load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return vlacnn::report::report_from_json(ss.str());
}

double pct_arg(const char* flag, const char* value) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != std::string(value).size() || v < 0) {
    throw std::runtime_error(std::string(flag) +
                             " expects a non-negative number, got '" + value +
                             "'");
  }
  return v;
}

/// One run block out of a VLACNN_TIMELINE JSONL file, rebuilt into the
/// obs structs so analyze_timeline() gives the same answer the producer
/// would have computed.
struct TimelineRun {
  std::string label;
  double slo_cycles = 0;
  double interval_cycles = 0;
  std::vector<vlacnn::obs::TimelineSnapshot> snapshots;
  std::vector<vlacnn::obs::TimelineAlert> alerts;
};

std::vector<TimelineRun> load_timeline(const std::string& path) {
  using vlacnn::report::Json;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<TimelineRun> runs;
  std::string line;
  std::size_t lineno = 0;
  auto num = [](const Json& j, const char* key) {
    return j.at(key).num_or(0);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Json j;
    try {
      j = vlacnn::report::parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
    const std::string type = j.at("type").string;
    if (type == "run") {
      runs.emplace_back();
      runs.back().label = j.at("label").string;
      continue;
    }
    if (runs.empty()) {
      // A block written directly by TimelineRecorder::to_jsonl() has no run
      // line; treat the whole file as one unlabeled run.
      runs.emplace_back();
    }
    TimelineRun& run = runs.back();
    if (type == "header") {
      run.slo_cycles = num(j, "slo_cycles");
      run.interval_cycles = num(j, "interval_cycles");
    } else if (type == "snapshot") {
      vlacnn::obs::TimelineSnapshot s;
      s.t_start = num(j, "t_start");
      s.t_end = num(j, "t_end");
      s.arrivals = static_cast<std::uint64_t>(num(j, "arrivals"));
      s.drops = static_cast<std::uint64_t>(num(j, "drops"));
      s.dispatches = static_cast<std::uint64_t>(num(j, "dispatches"));
      s.completions = static_cast<std::uint64_t>(num(j, "completions"));
      s.queue_depth = static_cast<std::uint64_t>(num(j, "queue_depth"));
      s.in_flight = static_cast<int>(num(j, "in_flight"));
      s.mean_queue = num(j, "mean_queue");
      s.utilization = num(j, "utilization");
      s.arrival_rate = num(j, "arrival_rate");
      s.completion_rate = num(j, "completion_rate");
      s.rolling_p99 = num(j, "rolling_p99");
      s.rolling_count = static_cast<std::uint64_t>(num(j, "rolling_count"));
      s.burn_short = num(j, "burn_short");
      s.burn_long = num(j, "burn_long");
      s.alert = j.at("alert").boolean;
      s.cum_offered = static_cast<std::uint64_t>(num(j, "cum_offered"));
      s.cum_completed = static_cast<std::uint64_t>(num(j, "cum_completed"));
      s.cum_dropped = static_cast<std::uint64_t>(num(j, "cum_dropped"));
      run.snapshots.push_back(s);
    } else if (type == "alert" || type == "clear") {
      vlacnn::obs::TimelineAlert a;
      a.t = num(j, "t");
      a.raised = type == "alert";
      a.burn_rate = num(j, "burn_rate");
      run.alerts.push_back(a);
    } else {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": unknown line type '" + type + "'");
    }
  }
  return runs;
}

int render_timeline(const std::string& path, std::size_t max_snaps) {
  const std::vector<TimelineRun> runs = load_timeline(path);
  if (runs.empty()) {
    std::printf("%s: no timeline runs\n", path.c_str());
    return 1;
  }
  for (const TimelineRun& run : runs) {
    const vlacnn::obs::TimelineAnalysis a =
        vlacnn::obs::analyze_timeline(run.snapshots, run.alerts);
    std::printf("== %s ==\n",
                run.label.empty() ? "(unlabeled run)" : run.label.c_str());
    std::printf(
        "  %zu snapshots x %.4g cycles, slo %.4g cycles, %zu alert events\n",
        run.snapshots.size(), run.interval_cycles, run.slo_cycles,
        run.alerts.size());
    std::printf("  warm-up: %zu snapshots (%.4g cycles) until rolling p99 "
                "settles\n",
                a.warmup_snapshots, a.warmup_end_cycles);
    std::printf("  steady state: %.4g arrivals/Mcyc, %.4g completions/Mcyc, "
                "utilization %.1f%%, mean queue %.2f\n",
                a.steady_arrival_rate * 1e6, a.steady_completion_rate * 1e6,
                a.steady_utilization * 100.0, a.steady_mean_queue);
    std::printf("  rolling p99 %.4g cycles; max burn rate %.3f; %llu alerts, "
                "%.4g cycles in alert\n",
                a.final_rolling_p99, a.max_burn_rate,
                static_cast<unsigned long long>(a.alert_count),
                a.time_in_alert_cycles);
    const std::size_t n = run.snapshots.size();
    const std::size_t shown =
        max_snaps == 0 ? n : std::min<std::size_t>(n, max_snaps);
    if (shown > 0) {
      std::printf("  %12s %6s %6s %5s %6s %7s %10s %8s %5s\n", "t_end", "arr",
                  "done", "drop", "queue", "util%", "p99roll", "burn", "alert");
      for (std::size_t i = 0; i < shown; ++i) {
        const vlacnn::obs::TimelineSnapshot& s = run.snapshots[i];
        std::printf("  %12.4g %6llu %6llu %5llu %6.1f %7.1f %10.4g %8.3f %5s\n",
                    s.t_end, static_cast<unsigned long long>(s.arrivals),
                    static_cast<unsigned long long>(s.completions),
                    static_cast<unsigned long long>(s.drops), s.mean_queue,
                    s.utilization * 100.0, s.rolling_p99, s.burn_long,
                    s.alert ? "YES" : "-");
      }
      if (shown < n) {
        std::printf("  ... %zu more snapshots (--snapshots 0 shows all)\n",
                    n - shown);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vlacnn::report;
  // Arm the obs exit hooks up front so VLACNN_TRACE/VLACNN_METRICS runs that
  // die on a CLI error still flush their files (the tracer only writes if its
  // singleton was constructed before exit).
  vlacnn::obs::install_exit_report();
  try {
    if (argc < 2) return usage(argv[0]);
    const std::string cmd = argv[1];
    if (cmd == "timeline") {
      if (argc < 3) return usage(argv[0]);
      std::size_t max_snaps = 12;
      for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--snapshots" && i + 1 < argc) {
          max_snaps =
              static_cast<std::size_t>(pct_arg("--snapshots", argv[++i]));
        } else {
          std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                       flag.c_str());
          return usage(argv[0]);
        }
      }
      return render_timeline(argv[2], max_snaps);
    }
    if (cmd == "summarize") {
      if (argc != 3) return usage(argv[0]);
      std::fputs(summarize(load(argv[2])).c_str(), stdout);
      return 0;
    }
    if (cmd == "diff") {
      if (argc < 4) return usage(argv[0]);
      DiffOptions opt;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if ((flag == "--budget-pct" || flag == "--wall-budget-pct") &&
            i + 1 < argc) {
          const double v = pct_arg(flag.c_str(), argv[++i]);
          (flag == "--budget-pct" ? opt.cycle_budget_pct
                                  : opt.wall_budget_pct) = v;
        } else {
          std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                       flag.c_str());
          return usage(argv[0]);
        }
      }
      const RunReport base = load(argv[2]);
      const RunReport cur = load(argv[3]);
      const DiffResult d = diff_reports(base, cur, opt);
      std::fputs(diff_to_string(d, opt).c_str(), stdout);
      return d.ok() ? 0 : 1;
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vlacnn-report: %s\n", e.what());
    return 2;
  }
}

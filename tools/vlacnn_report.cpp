// vlacnn-report: inspect and gate on the structured run reports the bench
// drivers emit under VLACNN_REPORT=<dir> (see DESIGN.md §9).
//
//   vlacnn-report summarize <report.json>
//       ASCII attribution/roofline table of one report.
//
//   vlacnn-report diff <baseline.json> <current.json>
//                      [--budget-pct N] [--wall-budget-pct N]
//       Compare per-grid-point cycle counts against a committed baseline.
//       Exit 0 when every shared point (and the total) is within the cycle
//       budget (default 2%); exit 1 on any regression over budget. Wall time
//       is only gated when --wall-budget-pct is given (wall clock is noisy
//       across machines; cycles are deterministic).
//
//   vlacnn-report timeline <timeline.jsonl> [--snapshots N]
//       Analyze a VLACNN_TIMELINE file: per simulated run, detect the warm-up
//       transient, summarize the steady-state window and SLO burn-rate, and
//       tabulate up to N snapshots (default 12, 0 = all).
//
//   vlacnn-report requests <reqtrace.jsonl> [--top N] [--waterfall N]
//       Request forensics over a VLACNN_REQTRACE file: per run, the top-N
//       slowest sampled requests (default 10), a per-request span waterfall
//       with a critical-path call for the N slowest (default 3), the sketch's
//       tail exemplars, and an aggregate blame summary. Every sampled
//       request's spans are cross-checked bit-exactly against the Sterbenz
//       attribution ((queue+formation)+service == latency, and the layer
//       segments folded back-to-front == service); any mismatch exits 1.
//
//   vlacnn-report profile <kernprof.jsonl> [--point SUBSTR] [--windows N]
//       Kernel-profile explorer over a VLACNN_KERNPROF file (simulated PMU,
//       DESIGN.md §14): per grid point, the per-phase cycle attribution
//       table; across points, the hottest-phase-by-mem-stall ranking; and
//       for one chosen point (--point picks the first label containing
//       SUBSTR, default the first block) an ASCII occupancy + L2-miss-rate
//       timeline over up to N counter windows (default 16, 0 = all). Every
//       block's phase cycles are cross-checked bit-exactly against the
//       kernel's aggregate cycles (right-to-left Sterbenz fold); any
//       mismatch exits 1.
//
// Exit codes (all subcommands): 0 success, 1 semantic failure (regression
// over budget, no runs in a file, attribution mismatch, unreadable input),
// 2 usage error (bad flag or subcommand; usage goes to stderr).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "report/json.h"
#include "report/report.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summarize <report.json>\n"
               "       %s diff <baseline.json> <current.json> "
               "[--budget-pct N] [--wall-budget-pct N]\n"
               "       %s timeline <timeline.jsonl> [--snapshots N]\n"
               "       %s requests <reqtrace.jsonl> [--top N] "
               "[--waterfall N]\n"
               "       %s profile <kernprof.jsonl> [--point SUBSTR] "
               "[--windows N]\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

vlacnn::report::RunReport load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return vlacnn::report::report_from_json(ss.str());
}

/// A malformed flag value — exits through the usage path (2), unlike runtime
/// failures (1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

double pct_arg(const char* flag, const char* value) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != std::string(value).size() || v < 0) {
    throw UsageError(std::string(flag) +
                     " expects a non-negative number, got '" + value + "'");
  }
  return v;
}

/// One run block out of a VLACNN_TIMELINE JSONL file, rebuilt into the
/// obs structs so analyze_timeline() gives the same answer the producer
/// would have computed.
struct TimelineRun {
  std::string label;
  double slo_cycles = 0;
  double interval_cycles = 0;
  std::vector<vlacnn::obs::TimelineSnapshot> snapshots;
  std::vector<vlacnn::obs::TimelineAlert> alerts;
};

std::vector<TimelineRun> load_timeline(const std::string& path) {
  using vlacnn::report::Json;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<TimelineRun> runs;
  std::string line;
  std::size_t lineno = 0;
  auto num = [](const Json& j, const char* key) {
    return j.at(key).num_or(0);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Json j;
    try {
      j = vlacnn::report::parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
    const std::string type = j.at("type").string;
    if (type == "run") {
      runs.emplace_back();
      runs.back().label = j.at("label").string;
      continue;
    }
    if (runs.empty()) {
      // A block written directly by TimelineRecorder::to_jsonl() has no run
      // line; treat the whole file as one unlabeled run.
      runs.emplace_back();
    }
    TimelineRun& run = runs.back();
    if (type == "header") {
      run.slo_cycles = num(j, "slo_cycles");
      run.interval_cycles = num(j, "interval_cycles");
    } else if (type == "snapshot") {
      vlacnn::obs::TimelineSnapshot s;
      s.t_start = num(j, "t_start");
      s.t_end = num(j, "t_end");
      s.arrivals = static_cast<std::uint64_t>(num(j, "arrivals"));
      s.drops = static_cast<std::uint64_t>(num(j, "drops"));
      s.dispatches = static_cast<std::uint64_t>(num(j, "dispatches"));
      s.completions = static_cast<std::uint64_t>(num(j, "completions"));
      s.queue_depth = static_cast<std::uint64_t>(num(j, "queue_depth"));
      s.in_flight = static_cast<int>(num(j, "in_flight"));
      s.mean_queue = num(j, "mean_queue");
      s.utilization = num(j, "utilization");
      s.arrival_rate = num(j, "arrival_rate");
      s.completion_rate = num(j, "completion_rate");
      s.rolling_p99 = num(j, "rolling_p99");
      s.rolling_count = static_cast<std::uint64_t>(num(j, "rolling_count"));
      s.burn_short = num(j, "burn_short");
      s.burn_long = num(j, "burn_long");
      s.alert = j.at("alert").boolean;
      s.cum_offered = static_cast<std::uint64_t>(num(j, "cum_offered"));
      s.cum_completed = static_cast<std::uint64_t>(num(j, "cum_completed"));
      s.cum_dropped = static_cast<std::uint64_t>(num(j, "cum_dropped"));
      run.snapshots.push_back(s);
    } else if (type == "alert" || type == "clear") {
      vlacnn::obs::TimelineAlert a;
      a.t = num(j, "t");
      a.raised = type == "alert";
      a.burn_rate = num(j, "burn_rate");
      run.alerts.push_back(a);
    } else {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": unknown line type '" + type + "'");
    }
  }
  return runs;
}

int render_timeline(const std::string& path, std::size_t max_snaps) {
  const std::vector<TimelineRun> runs = load_timeline(path);
  if (runs.empty()) {
    std::printf("%s: no timeline runs\n", path.c_str());
    return 1;
  }
  for (const TimelineRun& run : runs) {
    const vlacnn::obs::TimelineAnalysis a =
        vlacnn::obs::analyze_timeline(run.snapshots, run.alerts);
    std::printf("== %s ==\n",
                run.label.empty() ? "(unlabeled run)" : run.label.c_str());
    std::printf(
        "  %zu snapshots x %.4g cycles, slo %.4g cycles, %zu alert events\n",
        run.snapshots.size(), run.interval_cycles, run.slo_cycles,
        run.alerts.size());
    std::printf("  warm-up: %zu snapshots (%.4g cycles) until rolling p99 "
                "settles\n",
                a.warmup_snapshots, a.warmup_end_cycles);
    std::printf("  steady state: %.4g arrivals/Mcyc, %.4g completions/Mcyc, "
                "utilization %.1f%%, mean queue %.2f\n",
                a.steady_arrival_rate * 1e6, a.steady_completion_rate * 1e6,
                a.steady_utilization * 100.0, a.steady_mean_queue);
    std::printf("  rolling p99 %.4g cycles; max burn rate %.3f; %llu alerts, "
                "%.4g cycles in alert\n",
                a.final_rolling_p99, a.max_burn_rate,
                static_cast<unsigned long long>(a.alert_count),
                a.time_in_alert_cycles);
    const std::size_t n = run.snapshots.size();
    const std::size_t shown =
        max_snaps == 0 ? n : std::min<std::size_t>(n, max_snaps);
    if (shown > 0) {
      std::printf("  %12s %6s %6s %5s %6s %7s %10s %8s %5s\n", "t_end", "arr",
                  "done", "drop", "queue", "util%", "p99roll", "burn", "alert");
      for (std::size_t i = 0; i < shown; ++i) {
        const vlacnn::obs::TimelineSnapshot& s = run.snapshots[i];
        std::printf("  %12.4g %6llu %6llu %5llu %6.1f %7.1f %10.4g %8.3f %5s\n",
                    s.t_end, static_cast<unsigned long long>(s.arrivals),
                    static_cast<unsigned long long>(s.completions),
                    static_cast<unsigned long long>(s.drops), s.mean_queue,
                    s.utilization * 100.0, s.rolling_p99, s.burn_long,
                    s.alert ? "YES" : "-");
      }
      if (shown < n) {
        std::printf("  ... %zu more snapshots (--snapshots 0 shows all)\n",
                    n - shown);
      }
    }
  }
  return 0;
}

// -- request forensics --------------------------------------------------------

/// One sampled request out of a VLACNN_REQTRACE JSONL file.
struct TraceReq {
  std::uint64_t id = 0;
  double arrival = 0, dispatch = 0, completion = 0, latency = 0;
  double queue_wait = 0, formation_wait = 0, service = 0;
  double router_hop = 0;  ///< fleet traces only; 0 on single-chip traces
  int chip = -1;          ///< serving chip; -1 = single-chip trace
  int batch = 0, instance = -1;
  bool dropped = false, within_slo = true;
  std::string keep;
  std::vector<std::pair<std::string, double>> layers;  ///< name, cycles
  std::vector<std::pair<std::string, std::string>> notes;
};

/// One run block (a grid point, or an unlabeled serial simulation).
struct TraceRunBlock {
  std::string label;
  double slo_cycles = 0;
  std::uint64_t offered = 0, completed = 0, dropped = 0, violations = 0;
  std::vector<std::tuple<double, double, std::uint64_t>>
      exemplars;  ///< bucket_upper, latency, trace id
  std::vector<TraceReq> requests;
};

std::vector<TraceRunBlock> load_reqtrace(const std::string& path) {
  using vlacnn::report::Json;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<TraceRunBlock> runs;
  std::string line;
  std::size_t lineno = 0;
  auto num = [](const Json& j, const char* key) { return j.at(key).num_or(0); };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Json j;
    try {
      j = vlacnn::report::parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
    const std::string type = j.at("type").string;
    if (type == "run") {
      runs.emplace_back();
      runs.back().label = j.at("label").string;
      continue;
    }
    if (runs.empty()) runs.emplace_back();  // recorder-direct file: one run
    TraceRunBlock& run = runs.back();
    if (type == "header") {
      run.slo_cycles = num(j, "slo_cycles");
      run.offered = static_cast<std::uint64_t>(num(j, "offered"));
      run.completed = static_cast<std::uint64_t>(num(j, "completed"));
      run.dropped = static_cast<std::uint64_t>(num(j, "dropped"));
      run.violations = static_cast<std::uint64_t>(num(j, "violations"));
    } else if (type == "exemplar") {
      run.exemplars.emplace_back(
          num(j, "bucket_upper"), num(j, "latency"),
          static_cast<std::uint64_t>(num(j, "id")));
    } else if (type == "request") {
      TraceReq r;
      r.id = static_cast<std::uint64_t>(num(j, "id"));
      r.arrival = num(j, "arrival");
      r.dispatch = num(j, "dispatch");
      r.completion = num(j, "completion");
      r.latency = num(j, "latency");
      r.queue_wait = num(j, "queue_wait");
      r.formation_wait = num(j, "formation_wait");
      r.service = num(j, "service");
      // Fleet traces only (obs/reqtrace.h): absent on single-chip files.
      if (const Json* f = j.find("router_hop")) r.router_hop = f->num_or(0);
      if (const Json* f = j.find("chip")) r.chip = static_cast<int>(f->num_or(-1));
      r.batch = static_cast<int>(num(j, "batch"));
      r.instance = static_cast<int>(num(j, "instance"));
      r.dropped = j.at("dropped").boolean;
      r.within_slo = j.at("within_slo").boolean;
      r.keep = j.at("keep").string;
      for (const Json& seg : j.at("layers").array) {
        r.layers.emplace_back(seg.at("name").string, seg.at("cycles").num_or(0));
      }
      for (const Json& note : j.at("notes").array) {
        r.notes.emplace_back(note.at("k").string, note.at("v").string);
      }
      run.requests.push_back(std::move(r));
    } else {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": unknown line type '" + type + "'");
    }
  }
  return runs;
}

/// The Sterbenz cross-check the producer promises: spans must reconstitute
/// the request's latency bit for bit, with the exact evaluation orders the
/// recorder used. Returns the number of violated identities (0 = exact).
int attribution_mismatches(const TraceReq& r) {
  int bad = 0;
  // Top-level spans fold left-to-right (request_sim.h's attribution; the
  // fleet extends it with a router-hop span — serving/fleet.h — and the
  // single-chip identity is its hop == 0 special case: 0.0 + x == x).
  if ((r.router_hop + (r.queue_wait + r.formation_wait)) + r.service !=
      r.completion - r.arrival) {
    ++bad;
  }
  if (r.latency != r.completion - r.arrival) ++bad;
  // Layer segments fold back-to-front (obs/reqtrace.h's exact_split chain).
  if (!r.layers.empty()) {
    double svc = 0;
    for (std::size_t i = r.layers.size(); i-- > 0;) {
      svc = r.layers[i].second + svc;
    }
    if (svc != r.service) ++bad;
  }
  return bad;
}

void print_waterfall(const TraceReq& r) {
  if (r.chip >= 0) {
    std::printf("  -- trace #%llu: %.6g cycles%s, batch %d on chip %d "
                "instance %d [%s] --\n",
                static_cast<unsigned long long>(r.id), r.latency,
                r.within_slo ? "" : " (SLO MISS)", r.batch, r.chip,
                r.instance, r.keep.c_str());
  } else {
    std::printf("  -- trace #%llu: %.6g cycles%s, batch %d on instance %d "
                "[%s] --\n",
                static_cast<unsigned long long>(r.id), r.latency,
                r.within_slo ? "" : " (SLO MISS)", r.batch, r.instance,
                r.keep.c_str());
  }
  // Fleet traces carry a leading router-hop span (serving/fleet.h);
  // single-chip traces start at queue_wait.
  std::vector<std::pair<const char*, double>> spans;
  if (r.chip >= 0) spans.emplace_back("router_hop", r.router_hop);
  spans.emplace_back("queue_wait", r.queue_wait);
  spans.emplace_back("formation_wait", r.formation_wait);
  spans.emplace_back("service", r.service);
  const char* critical = spans[0].first;
  double critical_cycles = spans[0].second;
  for (const auto& [span_name, span_cycles] : spans) {
    const double share = r.latency > 0 ? span_cycles / r.latency : 0;
    const int bar = static_cast<int>(share * 24.0 + 0.5);
    std::printf("     %-15s %12.6g  %5.1f%%  %.*s\n", span_name, span_cycles,
                share * 100.0, bar, "########################");
    if (span_cycles > critical_cycles) {
      critical = span_name;
      critical_cycles = span_cycles;
    }
  }
  std::printf("     critical path: %s (%.1f%% of latency)\n", critical,
              r.latency > 0 ? critical_cycles / r.latency * 100.0 : 0.0);
  if (!r.layers.empty()) {
    // The three most expensive layer segments of the service span.
    std::vector<std::pair<std::string, double>> segs = r.layers;
    std::stable_sort(segs.begin(), segs.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    std::printf("     hottest layers:");
    for (std::size_t i = 0; i < segs.size() && i < 3; ++i) {
      std::printf("%s %s %.4g", i == 0 ? "" : ",", segs[i].first.c_str(),
                  segs[i].second);
    }
    std::printf(" cycles\n");
  }
  for (const auto& [k, v] : r.notes) {
    std::printf("     note %s=%s\n", k.c_str(), v.c_str());
  }
}

int render_requests(const std::string& path, std::size_t top_n,
                    std::size_t waterfall_n) {
  const std::vector<TraceRunBlock> runs = load_reqtrace(path);
  if (runs.empty()) {
    std::printf("%s: no request-trace runs\n", path.c_str());
    return 1;
  }
  std::uint64_t mismatches = 0;
  for (const TraceRunBlock& run : runs) {
    std::printf("== %s ==\n",
                run.label.empty() ? "(unlabeled run)" : run.label.c_str());
    std::printf("  offered %llu, completed %llu, dropped %llu, "
                "SLO violations %llu (slo %.4g cycles), sampled %zu\n",
                static_cast<unsigned long long>(run.offered),
                static_cast<unsigned long long>(run.completed),
                static_cast<unsigned long long>(run.dropped),
                static_cast<unsigned long long>(run.violations),
                run.slo_cycles, run.requests.size());
    for (const TraceReq& r : run.requests) {
      mismatches += static_cast<std::uint64_t>(attribution_mismatches(r));
    }
    if (!run.exemplars.empty()) {
      std::printf("  tail exemplars (p90+ latency buckets):\n");
      for (const auto& [upper, lat, id] : run.exemplars) {
        std::printf("    bucket <= %.6g cycles: trace #%llu (%.6g cycles)\n",
                    upper, static_cast<unsigned long long>(id), lat);
      }
    }

    // Slowest-first over sampled completions (drops have zero latency and
    // their own row in the blame summary).
    std::vector<const TraceReq*> slow;
    for (const TraceReq& r : run.requests) {
      if (!r.dropped) slow.push_back(&r);
    }
    std::sort(slow.begin(), slow.end(), [](const TraceReq* a,
                                           const TraceReq* b) {
      return a->latency != b->latency ? a->latency > b->latency
                                      : a->id < b->id;
    });
    const std::size_t shown = std::min<std::size_t>(slow.size(), top_n);
    if (shown > 0) {
      std::printf("  top %zu slowest sampled requests:\n", shown);
      std::printf("  %4s %8s %12s %12s %12s %12s %5s %4s %4s %s\n", "rank",
                  "trace", "latency", "queue", "formation", "service", "batch",
                  "inst", "slo", "keep");
      for (std::size_t i = 0; i < shown; ++i) {
        const TraceReq& r = *slow[i];
        std::printf("  %4zu %8llu %12.6g %12.6g %12.6g %12.6g %5d %4d %4s "
                    "%s\n",
                    i + 1, static_cast<unsigned long long>(r.id), r.latency,
                    r.queue_wait, r.formation_wait, r.service, r.batch,
                    r.instance, r.within_slo ? "ok" : "MISS", r.keep.c_str());
      }
    }
    for (std::size_t i = 0; i < slow.size() && i < waterfall_n; ++i) {
      print_waterfall(*slow[i]);
    }

    // Aggregate blame: where the sampled completions' cycles went, and which
    // span was each request's largest (its critical path).
    double qw = 0, fw = 0, svc = 0, rh = 0;
    std::size_t blame_q = 0, blame_f = 0, blame_s = 0, explored = 0;
    for (const TraceReq* r : slow) {
      qw += r->queue_wait;
      fw += r->formation_wait;
      svc += r->service;
      rh += r->router_hop;
      if (r->queue_wait >= r->formation_wait && r->queue_wait >= r->service) {
        ++blame_q;
      } else if (r->formation_wait >= r->service) {
        ++blame_f;
      } else {
        ++blame_s;
      }
      for (const auto& [k, v] : r->notes) {
        if (k == "explore" && v != "none") ++explored;
      }
    }
    const double total = qw + fw + svc;
    if (total > 0) {
      std::printf("  blame (sampled completions): queue %.1f%%, formation "
                  "%.1f%%, service %.1f%% of cycles; critical path "
                  "queue:%zu formation:%zu service:%zu; %zu served by an "
                  "exploration batch\n",
                  qw / total * 100.0, fw / total * 100.0, svc / total * 100.0,
                  blame_q, blame_f, blame_s, explored);
      // Fleet traces only: the front-end hop's share of end-to-end cycles.
      if (rh > 0) {
        std::printf("  router hop: %.1f%% of sampled end-to-end cycles\n",
                    rh / (rh + total) * 100.0);
      }
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "vlacnn-report: %llu span-attribution identities violated — "
                 "trace spans must sum bit-exactly to completion - arrival\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  std::printf("attribution cross-check: every sampled request's spans sum "
              "bit-exactly to its latency\n");
  return 0;
}

// -- kernel-profile explorer --------------------------------------------------

/// One phase record out of a VLACNN_KERNPROF JSONL file.
struct ProfPhase {
  std::string name;
  double cycles = 0, raw_cycles = 0;
  double compute = 0, mem_issue = 0, mem_stall = 0, scalar = 0;
  double avg_vl = 0, flops = 0;
  double l1_accesses = 0, l1_misses = 0, l2_accesses = 0, l2_misses = 0;
  double mem_bytes = 0;
};

/// One counter window.
struct ProfWindow {
  double t_start = 0, t_end = 0;
  double compute = 0, mem_issue = 0, mem_stall = 0, scalar = 0;
  double avg_vl = 0, lane_utilization = 0;
  double l1_miss_rate = 0, l2_miss_rate = 0, dram_bytes_per_cycle = 0;
};

/// One grid point's profile block.
struct ProfRun {
  std::string label, net, algo, attach;
  int layer = -1;
  std::uint64_t vlen_bits = 0, l2_bytes = 0, lanes = 0;
  double interval_cycles = 0, cycles = 0;
  double compute = 0, mem_issue = 0, mem_stall = 0, scalar = 0;
  std::vector<ProfPhase> phases;
  std::vector<ProfWindow> windows;
};

std::vector<ProfRun> load_kernprof(const std::string& path) {
  using vlacnn::report::Json;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<ProfRun> runs;
  std::string line;
  std::size_t lineno = 0;
  auto num = [](const Json& j, const char* key) { return j.at(key).num_or(0); };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Json j;
    try {
      j = vlacnn::report::parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
    const std::string type = j.at("type").string;
    if (type == "run") {
      runs.emplace_back();
      runs.back().label = j.at("label").string;
      continue;
    }
    if (runs.empty()) runs.emplace_back();  // to_jsonl()-direct file: one run
    ProfRun& run = runs.back();
    if (type == "kernel") {
      run.net = j.at("net").string;
      run.layer = static_cast<int>(num(j, "layer"));
      run.algo = j.at("algo").string;
      run.vlen_bits = static_cast<std::uint64_t>(num(j, "vlen_bits"));
      run.l2_bytes = static_cast<std::uint64_t>(num(j, "l2_bytes"));
      run.lanes = static_cast<std::uint64_t>(num(j, "lanes"));
      run.attach = j.at("attach").string;
      run.interval_cycles = num(j, "interval_cycles");
      run.cycles = num(j, "cycles");
      run.compute = num(j, "compute_cycles");
      run.mem_issue = num(j, "mem_issue_cycles");
      run.mem_stall = num(j, "mem_stall_cycles");
      run.scalar = num(j, "scalar_cycles");
    } else if (type == "phase") {
      ProfPhase p;
      p.name = j.at("name").string;
      p.cycles = num(j, "cycles");
      p.raw_cycles = num(j, "raw_cycles");
      p.compute = num(j, "compute_cycles");
      p.mem_issue = num(j, "mem_issue_cycles");
      p.mem_stall = num(j, "mem_stall_cycles");
      p.scalar = num(j, "scalar_cycles");
      p.avg_vl = num(j, "avg_vl");
      p.flops = num(j, "flops");
      p.l1_accesses = num(j, "l1_accesses");
      p.l1_misses = num(j, "l1_misses");
      p.l2_accesses = num(j, "l2_accesses");
      p.l2_misses = num(j, "l2_misses");
      p.mem_bytes = num(j, "mem_bytes");
      run.phases.push_back(std::move(p));
    } else if (type == "window") {
      ProfWindow w;
      w.t_start = num(j, "t_start");
      w.t_end = num(j, "t_end");
      w.compute = num(j, "compute_cycles");
      w.mem_issue = num(j, "mem_issue_cycles");
      w.mem_stall = num(j, "mem_stall_cycles");
      w.scalar = num(j, "scalar_cycles");
      w.avg_vl = num(j, "avg_vl");
      w.lane_utilization = num(j, "lane_utilization");
      w.l1_miss_rate = num(j, "l1_miss_rate");
      w.l2_miss_rate = num(j, "l2_miss_rate");
      w.dram_bytes_per_cycle = num(j, "dram_bytes_per_cycle");
      run.windows.push_back(w);
    } else {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": unknown line type '" + type + "'");
    }
  }
  return runs;
}

/// The per-block cross-check the producer promises: phase cycle slices fold
/// right-to-left to the kernel's aggregate cycles bit for bit (the PMU's
/// Sterbenz partition). Returns 0 when exact, 1 on mismatch.
int profile_fold_mismatch(const ProfRun& run) {
  if (run.phases.empty()) return run.cycles != 0 ? 1 : 0;
  double total = 0;
  for (std::size_t i = run.phases.size(); i-- > 0;) {
    total = run.phases[i].cycles + total;
  }
  return total != run.cycles ? 1 : 0;
}

void print_profile_table(const ProfRun& run) {
  std::printf("== %s ==\n",
              run.label.empty() ? "(unlabeled run)" : run.label.c_str());
  std::printf("  %s vlen%llu l2:%llu lanes%llu %s — %.6g cycles "
              "(comp %.1f%%, mem %.1f%%, stall %.1f%%, scalar %.1f%%), "
              "%zu phases, %zu windows x %.4g cycles\n",
              run.algo.c_str(),
              static_cast<unsigned long long>(run.vlen_bits),
              static_cast<unsigned long long>(run.l2_bytes),
              static_cast<unsigned long long>(run.lanes), run.attach.c_str(),
              run.cycles,
              run.cycles > 0 ? 100.0 * run.compute / run.cycles : 0.0,
              run.cycles > 0 ? 100.0 * run.mem_issue / run.cycles : 0.0,
              run.cycles > 0 ? 100.0 * run.mem_stall / run.cycles : 0.0,
              run.cycles > 0 ? 100.0 * run.scalar / run.cycles : 0.0,
              run.phases.size(), run.windows.size(), run.interval_cycles);
  if (run.phases.empty()) return;
  std::printf("  %-16s %12s %6s  %-20s %6s %7s %7s %10s\n", "phase", "cycles",
              "share", "", "avg_vl", "l1miss", "l2miss", "dram_B");
  for (const ProfPhase& p : run.phases) {
    const double share = run.cycles > 0 ? p.cycles / run.cycles : 0;
    const int bar = static_cast<int>(share * 20.0 + 0.5);
    char l1[8] = "     -", l2[8] = "     -";
    if (p.l1_accesses > 0) {
      std::snprintf(l1, sizeof l1, "%7.4f", p.l1_misses / p.l1_accesses);
    }
    if (p.l2_accesses > 0) {
      std::snprintf(l2, sizeof l2, "%7.4f", p.l2_misses / p.l2_accesses);
    }
    std::printf("  %-16s %12.6g %5.1f%%  %-20.*s %6.1f %7s %7s %10.4g\n",
                p.name.c_str(), p.cycles, share * 100.0, bar,
                "####################", p.avg_vl, l1, l2, p.mem_bytes);
  }
}

void print_profile_timeline(const ProfRun& run, std::size_t max_windows) {
  std::printf("\noccupancy / miss-rate trajectory for %s:\n",
              run.label.empty() ? "(unlabeled run)" : run.label.c_str());
  if (run.windows.empty()) {
    std::printf("  (no counter windows — kernel shorter than one interval)\n");
    return;
  }
  const std::size_t n = run.windows.size();
  const std::size_t shown =
      max_windows == 0 ? n : std::min<std::size_t>(n, max_windows);
  std::printf("  %12s  %-32s %6s %6s %7s %7s %7s\n", "t_end",
              "occupancy (C/M/S/.=scalar)", "avg_vl", "lane%", "l1miss",
              "l2miss", "B/cyc");
  for (std::size_t i = 0; i < shown; ++i) {
    const ProfWindow& w = run.windows[i];
    const double busy = w.compute + w.mem_issue + w.mem_stall + w.scalar;
    char bar[33];
    int pos = 0;
    // 32 columns split by each bucket's share of the window's busy cycles;
    // truncation leaves trailing spaces rather than misordering the bands.
    const struct {
      char glyph;
      double cycles;
    } bands[] = {{'C', w.compute},
                 {'M', w.mem_issue},
                 {'S', w.mem_stall},
                 {'.', w.scalar}};
    for (const auto& b : bands) {
      const int width =
          busy > 0 ? static_cast<int>(b.cycles / busy * 32.0 + 0.5) : 0;
      for (int k = 0; k < width && pos < 32; ++k) bar[pos++] = b.glyph;
    }
    while (pos < 32) bar[pos++] = ' ';
    bar[32] = '\0';
    std::printf("  %12.6g  %-32s %6.1f %6.1f %7.4f %7.4f %7.3f\n", w.t_end,
                bar, w.avg_vl, w.lane_utilization * 100.0, w.l1_miss_rate,
                w.l2_miss_rate, w.dram_bytes_per_cycle);
  }
  if (shown < n) {
    std::printf("  ... %zu more windows (--windows 0 shows all)\n", n - shown);
  }
}

int render_profile(const std::string& path, const std::string& point,
                   std::size_t max_windows) {
  const std::vector<ProfRun> runs = load_kernprof(path);
  if (runs.empty()) {
    std::printf("%s: no kernel profiles\n", path.c_str());
    return 1;
  }
  int mismatches = 0;
  for (const ProfRun& run : runs) {
    print_profile_table(run);
    mismatches += profile_fold_mismatch(run);
  }

  // Hottest phases by memory-stall cycles across every profiled point: the
  // ranking that localizes a bandwidth cliff to one phase of one kernel.
  std::vector<std::pair<const ProfRun*, const ProfPhase*>> ranked;
  for (const ProfRun& run : runs) {
    for (const ProfPhase& p : run.phases) ranked.emplace_back(&run, &p);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->mem_stall > b.second->mem_stall;
                   });
  const std::size_t top = std::min<std::size_t>(ranked.size(), 10);
  if (top > 0) {
    std::printf("\nhottest phases by mem-stall cycles:\n");
    std::printf("  %4s %-44s %-16s %12s %7s\n", "rank", "point", "phase",
                "stall_cyc", "l2miss");
    for (std::size_t i = 0; i < top; ++i) {
      const ProfRun& run = *ranked[i].first;
      const ProfPhase& p = *ranked[i].second;
      char l2[8] = "     -";
      if (p.l2_accesses > 0) {
        std::snprintf(l2, sizeof l2, "%7.4f", p.l2_misses / p.l2_accesses);
      }
      std::printf("  %4zu %-44s %-16s %12.6g %7s\n", i + 1, run.label.c_str(),
                  p.name.c_str(), p.mem_stall, l2);
    }
  }

  // Windowed trajectory for one chosen point (first label match, or the
  // first block when --point was not given).
  const ProfRun* chosen = nullptr;
  for (const ProfRun& run : runs) {
    if (point.empty() || run.label.find(point) != std::string::npos) {
      chosen = &run;
      break;
    }
  }
  if (chosen == nullptr) {
    std::fprintf(stderr, "vlacnn-report: no profile label contains '%s'\n",
                 point.c_str());
    return 1;
  }
  print_profile_timeline(*chosen, max_windows);

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "vlacnn-report: %d profile blocks violate the phase "
                 "partition — phase cycles must fold bit-exactly to the "
                 "kernel total\n",
                 mismatches);
    return 1;
  }
  std::printf("\nattribution cross-check: every block's phase cycles fold "
              "bit-exactly to its kernel total\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vlacnn::report;
  // Arm the obs exit hooks up front so VLACNN_TRACE/VLACNN_METRICS runs that
  // die on a CLI error still flush their files (the tracer only writes if its
  // singleton was constructed before exit).
  vlacnn::obs::install_exit_report();
  try {
    if (argc < 2) return usage(argv[0]);
    const std::string cmd = argv[1];
    if (cmd == "timeline") {
      if (argc < 3) return usage(argv[0]);
      std::size_t max_snaps = 12;
      for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--snapshots" && i + 1 < argc) {
          max_snaps =
              static_cast<std::size_t>(pct_arg("--snapshots", argv[++i]));
        } else {
          std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                       flag.c_str());
          return usage(argv[0]);
        }
      }
      return render_timeline(argv[2], max_snaps);
    }
    if (cmd == "requests") {
      if (argc < 3) return usage(argv[0]);
      std::size_t top_n = 10, waterfall_n = 3;
      for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--top" && i + 1 < argc) {
          top_n = static_cast<std::size_t>(pct_arg("--top", argv[++i]));
        } else if (flag == "--waterfall" && i + 1 < argc) {
          waterfall_n =
              static_cast<std::size_t>(pct_arg("--waterfall", argv[++i]));
        } else {
          std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                       flag.c_str());
          return usage(argv[0]);
        }
      }
      return render_requests(argv[2], top_n, waterfall_n);
    }
    if (cmd == "profile") {
      if (argc < 3) return usage(argv[0]);
      std::string point;
      std::size_t max_windows = 16;
      for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--point" && i + 1 < argc) {
          point = argv[++i];
        } else if (flag == "--windows" && i + 1 < argc) {
          max_windows =
              static_cast<std::size_t>(pct_arg("--windows", argv[++i]));
        } else {
          std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                       flag.c_str());
          return usage(argv[0]);
        }
      }
      return render_profile(argv[2], point, max_windows);
    }
    if (cmd == "summarize") {
      if (argc != 3) return usage(argv[0]);
      std::fputs(summarize(load(argv[2])).c_str(), stdout);
      return 0;
    }
    if (cmd == "diff") {
      if (argc < 4) return usage(argv[0]);
      DiffOptions opt;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if ((flag == "--budget-pct" || flag == "--wall-budget-pct") &&
            i + 1 < argc) {
          const double v = pct_arg(flag.c_str(), argv[++i]);
          (flag == "--budget-pct" ? opt.cycle_budget_pct
                                  : opt.wall_budget_pct) = v;
        } else {
          std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                       flag.c_str());
          return usage(argv[0]);
        }
      }
      const RunReport base = load(argv[2]);
      const RunReport cur = load(argv[3]);
      const DiffResult d = diff_reports(base, cur, opt);
      std::fputs(diff_to_string(d, opt).c_str(), stdout);
      return d.ok() ? 0 : 1;
    }
    return usage(argv[0]);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "vlacnn-report: %s\n", e.what());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    // Runtime failures (unreadable or malformed input) exit 1; only usage
    // errors exit 2 — the contract scripts/test_cli_exit_codes.sh asserts
    // for both tools.
    std::fprintf(stderr, "vlacnn-report: %s\n", e.what());
    return 1;
  }
}
